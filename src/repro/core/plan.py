"""Shared per-trace precomputation: the *trace plan*.

A design-space sweep simulates one trace under dozens of configurations,
and most of the per-point work is identical across the grid: the address
decode depends only on the geometry's bit split, the re-indexing epoch
boundaries only on the update schedule, and the bank-sorted access
stream only on the routing (bank count × policy × schedule). A
:class:`TracePlan` memoizes each of those layers keyed by exactly the
configuration fields it depends on, so e.g. a ``breakeven_override``
axis reuses *everything* and a ``policy`` axis still reuses the decode
and the epoch boundaries.

The plan is engine-agnostic shared state:
:class:`~repro.core.fastsim.FastSimulator` (and, for the decode layer,
:class:`~repro.finegrain.sim.FineGrainSimulator`) accept one and build a
private plan when none is given — sharing is an optimization, never a
requirement, and every cached layer is a pure function of (trace, key),
so results are bit-identical with or without sharing. Plans live per
process: the parallel sweep ships the trace once per worker through the
pool initializer and each worker grows its own plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.power.idleness import IdleGapStructure, idle_gaps_from_sorted_accesses
from repro.trace.trace import Trace
from repro.utils.bitops import log2_exact, mask


@dataclass(frozen=True)
class BankOrder:
    """The bank-sorted view of one routed access stream.

    Only the projection idleness accounting actually consumes is
    retained — keeping the full ``physical``/``order`` permutation
    arrays per routing would dominate the plan's memory on long traces
    (they are cheap to recompute from the config when a caller needs
    them, and ``sorted_banks`` is just
    ``np.repeat(np.arange(num_banks), np.diff(splits))``).

    Attributes
    ----------
    sorted_cycles:
        The trace cycles reordered by (physical bank, arrival) — the
        stable argsort of the routed stream.
    splits:
        Segment boundaries: bank ``b`` owns
        ``sorted_cycles[splits[b]:splits[b + 1]]``.
    """

    sorted_cycles: np.ndarray
    splits: np.ndarray


class TracePlan:
    """Memoized per-trace state shared across simulation points.

    Parameters
    ----------
    trace:
        The trace every consumer of this plan must simulate; engines
        check with :meth:`matches` and refuse mismatched traces.
    """

    #: FIFO capacity of the per-routing idle-gap cache — the only layer
    #: holding O(accesses) arrays per *routing* rather than per trace.
    max_gap_routings: int = 8

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._cache: dict = {}

    # ------------------------------------------------------------------
    def matches(self, trace: Trace) -> bool:
        """True when ``trace`` is the plan's trace (identity or equality)."""
        mine = self.trace
        if mine is trace:
            return True
        return (
            len(mine) == len(trace)
            and mine.horizon == trace.horizon
            and bool(np.array_equal(mine.cycles, trace.cycles))
            and bool(np.array_equal(mine.addresses, trace.addresses))
        )

    def cached(self, key, compute):
        """Generic memoized section (used by the engines for their own
        derived state, e.g. the fast engine's hit counts)."""
        try:
            return self._cache[key]
        except KeyError:
            value = self._cache[key] = compute()
            return value

    def __len__(self) -> int:
        """Number of cached sections (introspection/tests)."""
        return len(self._cache)

    # ------------------------------------------------------------------
    @staticmethod
    def schedule_key(config) -> tuple | None:
        """Hashable identity of the config's firing update schedule.

        ``None`` means no updates ever fire (static indexing, or a
        dynamic policy with neither a period nor explicit events).
        """
        if config.policy == "static":
            return None
        if config.update_events is not None:
            return ("events", config.update_events)
        if config.update_period_cycles is None:
            return None
        return ("period", config.update_period_cycles)

    def decode(self, offset_bits: int, index_bits: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(index, tag)`` arrays for a geometry's bit split."""

        def compute():
            addresses = self.trace.addresses
            index = (addresses >> offset_bits) & mask(index_bits)
            tag = addresses >> (offset_bits + index_bits)
            return index, tag

        return self.cached(("decode", offset_bits, index_bits), compute)

    def epoch_starts(self, config) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(boundaries, starts)`` of the firing update schedule.

        ``boundaries`` are the update cycles that actually fire (those at
        or before the last access); ``starts`` brackets each epoch's
        accesses: epoch ``e`` owns trace positions
        ``starts[e]:starts[e + 1]``.
        """

        def compute():
            trace = self.trace
            if len(trace) == 0:
                boundaries = np.empty(0, dtype=np.int64)
            else:
                schedule = config.make_update_schedule()
                boundaries = schedule.boundaries_up_to(int(trace.cycles[-1]))
            starts = np.concatenate(
                (
                    [0],
                    np.searchsorted(trace.cycles, boundaries, side="left"),
                    [len(trace)],
                )
            )
            return boundaries, starts

        return self.cached(("epochs", self.schedule_key(config)), compute)

    def _routing_key(self, kind: str, config) -> tuple:
        """Cache key covering exactly what routing depends on."""
        geometry = config.geometry
        return (
            kind,
            geometry.offset_bits,
            geometry.index_bits,
            config.num_banks,
            config.policy,
            self.schedule_key(config),
        )

    def _compute_bank_order(self, config) -> BankOrder:
        """Route the trace through ``config`` and sort by (bank, arrival).

        With a single bank the stream is already sorted and the stable
        argsort is skipped outright.
        """
        trace = self.trace
        cycles = trace.cycles
        n = len(trace)
        geometry = config.geometry
        num_banks = config.num_banks
        if num_banks == 1:
            return BankOrder(cycles, np.array([0, n], dtype=np.int64))
        index, _ = self.decode(geometry.offset_bits, geometry.index_bits)
        line_bits = geometry.index_bits - log2_exact(num_banks)
        logical_bank = index >> line_bits
        _, starts = self.epoch_starts(config)
        policy = config.make_policy()
        physical = np.empty(n, dtype=np.int64)
        for epoch in range(len(starts) - 1):
            if epoch > 0:
                policy.update()
            lo, hi = int(starts[epoch]), int(starts[epoch + 1])
            if lo == hi:
                continue
            physical[lo:hi] = policy.mapping()[logical_bank[lo:hi]]
        order = np.argsort(physical, kind="stable")
        sorted_banks = physical[order]
        sorted_cycles = cycles[order]
        splits = np.searchsorted(sorted_banks, np.arange(num_banks + 1))
        return BankOrder(sorted_cycles, splits)

    def bank_order(self, config) -> BankOrder:
        """Routed-and-sorted access stream for a config's routing.

        Ad-hoc convenience, computed fresh on each call (the decode and
        epoch layers it builds on are still cached): the engines go
        through :meth:`idle_gaps` instead, which retains only the much
        smaller per-routing gap structure.
        """
        return self._compute_bank_order(config)

    def idle_gaps(self, config, backend: str | None = None) -> IdleGapStructure:
        """Cached breakeven-independent idle-gap structure per routing.

        This is the layer the fast engine's idleness accounting reads:
        the bank sort is computed transiently (not retained) and only
        the gap structure — the part every breakeven re-thresholds — is
        kept. The cache holds at most :attr:`max_gap_routings`
        structures (FIFO eviction), bounding plan memory on grids with
        many routings; eviction only costs a re-sort if an old routing
        recurs, never correctness. ``backend`` selects the kernel
        backend for a cache miss only — every backend produces a
        bit-identical structure, so the cache key excludes it.
        """
        key = self._routing_key("gaps", config)

        def compute():
            route = self._compute_bank_order(config)
            return idle_gaps_from_sorted_accesses(
                route.sorted_cycles, route.splits, 0, self.trace.horizon,
                backend=backend,
            )

        gaps = self.cached(key, compute)
        gap_keys = [
            k for k in self._cache if isinstance(k, tuple) and k and k[0] == "gaps"
        ]
        if len(gap_keys) > self.max_gap_routings:
            for stale in gap_keys[: len(gap_keys) - self.max_gap_routings]:
                if stale != key:
                    del self._cache[stale]
        return gaps


class EpochCursor:
    """Streaming epoch bracketing for one update-schedule identity.

    The out-of-core counterpart of :meth:`TracePlan.epoch_starts`: the
    schedule's firing boundaries are discovered chunk by chunk (a
    boundary *fires* when the first access at or after it arrives —
    exactly the reference engine's lazy drain), and each chunk's
    accesses are bracketed into epoch segments. One cursor is shared by
    every streaming consumer with the same schedule identity, so the
    searchsorted bracketing happens once per (chunk, schedule), not once
    per configuration.
    """

    def __init__(self, config) -> None:
        self._schedule = config.make_update_schedule()
        self.fired = 0
        self._chunk_id = -1
        self._current: tuple[np.ndarray, np.ndarray] | None = None

    def segments(self, chunk, chunk_id: int) -> tuple[np.ndarray, np.ndarray]:
        """``(boundaries, starts)`` of this chunk, memoized per chunk.

        ``boundaries`` are the schedule cycles that fire within this
        chunk (at or before its last access and not fired before);
        ``starts`` brackets the chunk's accesses: segment ``s`` owns
        positions ``starts[s]:starts[s + 1]``, with one update applied
        before each segment after the first.
        """
        if chunk_id == self._chunk_id:
            assert self._current is not None
            return self._current
        cycles = chunk.cycles
        if cycles.size == 0:
            boundaries = np.empty(0, dtype=np.int64)
            starts = np.array([0, 0], dtype=np.int64)
        else:
            # Drain the schedule incrementally — O(newly fired) per
            # chunk, never a recomputation of the already-fired prefix
            # (a periodic schedule over a long stream would otherwise
            # rebuild its full arange every chunk).
            last = int(cycles[-1])
            fired: list[int] = []
            while True:
                upcoming = self._schedule.next_update_cycle
                if upcoming is None or upcoming > last:
                    break
                fired.append(upcoming)
                self._schedule.due(upcoming)
            boundaries = np.asarray(fired, dtype=np.int64)
            self.fired += int(boundaries.size)
            starts = np.concatenate(
                (
                    [0],
                    np.searchsorted(cycles, boundaries, side="left"),
                    [cycles.size],
                )
            )
        self._chunk_id = chunk_id
        self._current = (boundaries, starts)
        return self._current


class StreamingPlan:
    """Per-chunk memoization shared by concurrent streaming consumers.

    The streaming analogue of :class:`TracePlan`: where the one-shot
    plan memoizes whole-trace layers keyed by the config fields they
    depend on, this plan memoizes the *current chunk's* layers — the
    address decode per bit split, the logical-bank projection per
    (bit split, bank count) and the epoch bracketing per schedule
    identity — so a streaming sweep evaluating many configurations in
    one pass decodes each chunk once per distinct key, not once per
    point. Chunk-keyed sections are dropped on :meth:`begin_chunk`
    (bounding memory at O(chunk) however long the stream);
    persistent sections (epoch cursors, carried hit-tracker state)
    survive across chunks.
    """

    def __init__(self) -> None:
        self.chunk = None
        self.chunk_id = -1
        self._chunk_cache: dict = {}
        self._persistent: dict = {}

    def begin_chunk(self, chunk) -> None:
        """Enter ``chunk``: invalidate every chunk-keyed section."""
        self.chunk = chunk
        self.chunk_id += 1
        self._chunk_cache.clear()

    def chunk_cached(self, key, compute):
        """Memoized section of the *current* chunk."""
        try:
            return self._chunk_cache[key]
        except KeyError:
            value = self._chunk_cache[key] = compute()
            return value

    def persistent(self, key, factory):
        """Memoized cross-chunk state (cursors, trackers)."""
        try:
            return self._persistent[key]
        except KeyError:
            value = self._persistent[key] = factory()
            return value

    # ------------------------------------------------------------------
    def decode(self, offset_bits: int, index_bits: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(index, tag)`` arrays of the current chunk."""

        def compute():
            addresses = self.chunk.addresses
            index = (addresses >> offset_bits) & mask(index_bits)
            tag = addresses >> (offset_bits + index_bits)
            return index, tag

        return self.chunk_cached(("decode", offset_bits, index_bits), compute)

    def logical_banks(
        self, offset_bits: int, index_bits: int, num_banks: int
    ) -> np.ndarray:
        """Cached logical-bank projection of the current chunk."""

        def compute():
            index, _ = self.decode(offset_bits, index_bits)
            line_bits = index_bits - log2_exact(num_banks)
            return index >> line_bits

        return self.chunk_cached(
            ("logical", offset_bits, index_bits, num_banks), compute
        )

    def epoch_cursor(self, config) -> EpochCursor:
        """Shared :class:`EpochCursor` for the config's schedule identity."""
        key = ("epochs", TracePlan.schedule_key(config))
        return self.persistent(key, lambda: EpochCursor(config))

    def epoch_segments(self, config) -> tuple[np.ndarray, np.ndarray]:
        """Current chunk's ``(boundaries, starts)`` for the config's schedule."""
        return self.epoch_cursor(config).segments(self.chunk, self.chunk_id)


def ensure_plan(plan: TracePlan | None, trace: Trace) -> TracePlan:
    """The plan to use for ``trace``: validate a given one, else build one."""
    if plan is None:
        return TracePlan(trace)
    if not plan.matches(trace):
        raise SimulationError("trace plan was built for a different trace")
    return plan
