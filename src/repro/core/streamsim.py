"""Streaming (out-of-core) simulation: chunked traces, carried state.

The one-shot fast engine (:mod:`repro.core.fastsim`) needs the whole
trace resident to sort and scan it. This module is its streaming
counterpart: the trace arrives as :class:`~repro.trace.stream.TraceChunk`
windows and every piece of engine state is *carried* across chunk
boundaries instead of recomputed from a global view —

* **hits/flushes** — a real cache-content model per (bit split, ways,
  schedule) identity: direct-mapped geometries carry one tag per set
  (:class:`_DirectMappedTracker`), set-associative ones carry the full
  LRU stacks (:class:`_LruTracker`, the lockstep rank walk of
  :meth:`~repro.core.fastsim.FastSimulator._grouped_lru` with an
  initial state). Both match the one-shot counts exactly because a
  cache set's contents after any access prefix are history-independent
  summaries the carried state captures completely;
* **routing** — the indexing policy object advances at each update
  boundary as it fires (the reference engine's lazy drain), and each
  chunk is routed and bank-sorted locally;
* **idleness** — the carry-state
  :class:`~repro.power.idleness.StreamingGapAccumulator`, whose only
  cross-chunk state is each bank's last-access cycle;
* **epochs/decode** — shared per chunk through
  :class:`~repro.core.plan.StreamingPlan`, so a multi-configuration
  pass decodes each chunk once per distinct key.

Every finalized :class:`~repro.core.results.SimulationResult` is
**bit-identical** to the one-shot engine on the materialized trace (the
streaming fuzz suite enforces this across banks, ways, policies,
breakevens and adversarial chunk sizes), while peak memory is bounded
by the chunk size, not the trace length
(``benchmarks/bench_stream.py`` measures it).

Entry points: :func:`run_streaming` / :func:`run_streaming_group`
(exposed as capabilities on the fast engine — see
:class:`~repro.core.fastsim.FastEngine`), :func:`simulate_stream` (the
dispatching front-end mirroring
:func:`~repro.core.simulator.simulate`), and
:func:`stream_selected` (single-pass evaluation of many grid points,
used by :func:`~repro.analysis.sweep.stream_sweep` and the campaign
runner).

**Sharded parallel streaming.** ``stream_selected(parallel=N)`` splits
one pass over the stream across ``N`` worker processes: worker ``w``
tracks hits for the cache sets with ``set_index % N == w`` and idle
gaps for the physical banks with ``bank % N == w``. Both partitions
are exact — per-set cache state and per-bank gap state never interact
across partition members — so elementwise
:meth:`~repro.power.idleness.BankIdleStats.merge` plus summed hit
counters reconstruct the serial pass **bit-identically** (the fuzz
suite pins it). Every worker re-opens the stream (the
:class:`~repro.trace.stream.TraceStream` contract makes ``chunks()``
repeatable) and advances its own policy/epoch cursors; when the stream
cannot travel to workers or an engine lacks the sharding capability,
the pass falls back to serial with a
:class:`~repro.errors.ReproWarning`.
"""

from __future__ import annotations

import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from repro.aging.lut import LifetimeLUT
from repro.cache.stats import CacheStats
from repro.core.engine import resolve_engine, validate_engine
from repro.core.plan import StreamingPlan, TracePlan
from repro.core.results import SimulationResult
from repro.core.simulator import assemble_result
from repro.errors import ConfigurationError, ReproWarning, SimulationError
from repro.kernels import dispatch as kernels
from repro.power.idleness import BankIdleStats, StreamingGapAccumulator
from repro.trace.stream import TraceStream


class _DirectMappedTracker:
    """Carried cache-content state of a direct-mapped geometry.

    One tag (plus a valid bit) per set — exactly what a direct-mapped
    cache remembers — so the adjacent-tag hit rule of the one-shot
    engine extends across chunk boundaries: the first access of a set
    within a chunk compares against the carried tag, later ones against
    their in-chunk predecessor.

    ``shard`` is an optional ``(index, count)`` pair restricting the
    tracker to the sets with ``set % count == index`` — the set
    partition of a sharded parallel pass. Per-set cache state never
    crosses sets, so the owned sets' hit/flush counts are exactly the
    serial tracker's contribution from those sets.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        backend: str | None = None,
        shard: tuple[int, int] | None = None,
    ) -> None:
        self.tags = np.zeros(num_sets, dtype=np.int64)
        self.valid = np.zeros(num_sets, dtype=bool)
        self.backend = backend
        self.shard = shard
        self.hits = 0
        self.flush_invalidations = 0
        self._chunk_id = -1

    def flush(self) -> None:
        """An update fired: count surviving lines, start the epoch cold."""
        self.flush_invalidations += int(np.count_nonzero(self.valid))
        self.valid[:] = False

    def _segment(self, index: np.ndarray, tag: np.ndarray) -> None:
        n = index.size
        if n == 0:
            return
        order = np.lexsort((np.arange(n), index))
        idx_sorted = index[order]
        tag_sorted = tag[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = idx_sorted[1:] != idx_sorted[:-1]
        # Non-first accesses of a set-run hit iff their in-chunk
        # predecessor (same set, adjacent after the sort) carried the
        # same tag — the one-shot adjacent comparison, verbatim.
        self.hits += int(np.count_nonzero(~first[1:] & (tag_sorted[1:] == tag_sorted[:-1])))
        first_pos = np.flatnonzero(first)
        first_idx = idx_sorted[first_pos]
        first_tag = tag_sorted[first_pos]
        self.hits += int(
            np.count_nonzero(self.valid[first_idx] & (self.tags[first_idx] == first_tag))
        )
        last = np.empty(n, dtype=bool)
        last[-1] = True
        last[:-1] = idx_sorted[1:] != idx_sorted[:-1]
        last_pos = np.flatnonzero(last)
        self.tags[idx_sorted[last_pos]] = tag_sorted[last_pos]
        self.valid[idx_sorted[last_pos]] = True

    def process_chunk(self, plan: StreamingPlan, config) -> None:
        """Advance through the current chunk (idempotent per chunk)."""
        if plan.chunk_id == self._chunk_id:
            return
        self._chunk_id = plan.chunk_id
        geometry = config.geometry
        index, tag = plan.decode(geometry.offset_bits, geometry.index_bits)
        keep = None
        if self.shard is not None:
            worker, count = self.shard
            keep = (index % count) == worker
        _, starts = plan.epoch_segments(config)
        for segment in range(len(starts) - 1):
            if segment > 0:
                self.flush()
            lo, hi = int(starts[segment]), int(starts[segment + 1])
            if lo < hi:
                if keep is None:
                    self._segment(index[lo:hi], tag[lo:hi])
                else:
                    mask = keep[lo:hi]
                    self._segment(index[lo:hi][mask], tag[lo:hi][mask])


class _LruTracker:
    """Carried LRU stacks of a set-associative geometry.

    The full ``(num_sets, ways)`` recency stacks are the carried state;
    each chunk segment advances them through
    :func:`repro.kernels.lru_segment` (the carried-state sibling of the
    one-shot walk behind
    :meth:`~repro.core.fastsim.FastSimulator._grouped_lru`), starting
    from the carried contents instead of cold. Exact for the same
    reason the one-shot walk is: an LRU set's contents are a
    history-independent function of its most recent distinct tags.

    ``shard`` restricts the tracker to its set partition exactly like
    :class:`_DirectMappedTracker`.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        backend: str | None = None,
        shard: tuple[int, int] | None = None,
    ) -> None:
        self.ways = ways
        self.stacks = np.full((num_sets, ways), -1, dtype=np.int64)
        self.backend = backend
        self.shard = shard
        self.hits = 0
        self.flush_invalidations = 0
        self._chunk_id = -1

    def flush(self) -> None:
        self.flush_invalidations += int(np.count_nonzero(self.stacks != -1))
        self.stacks[:] = -1

    def _segment(self, index: np.ndarray, tag: np.ndarray) -> None:
        if index.size == 0:
            return
        order = np.argsort(index, kind="stable")
        self.hits += kernels.lru_segment(
            index[order], tag[order], self.stacks, backend=self.backend
        )

    def process_chunk(self, plan: StreamingPlan, config) -> None:
        """Advance through the current chunk (idempotent per chunk)."""
        if plan.chunk_id == self._chunk_id:
            return
        self._chunk_id = plan.chunk_id
        geometry = config.geometry
        index, tag = plan.decode(geometry.offset_bits, geometry.index_bits)
        keep = None
        if self.shard is not None:
            worker, count = self.shard
            keep = (index % count) == worker
        _, starts = plan.epoch_segments(config)
        for segment in range(len(starts) - 1):
            if segment > 0:
                self.flush()
            lo, hi = int(starts[segment]), int(starts[segment + 1])
            if lo < hi:
                if keep is None:
                    self._segment(index[lo:hi], tag[lo:hi])
                else:
                    mask = keep[lo:hi]
                    self._segment(index[lo:hi][mask], tag[lo:hi][mask])


def _hit_tracker(
    plan: StreamingPlan,
    config,
    backend: str | None = None,
    shard: tuple[int, int] | None = None,
):
    """Shared hit/flush tracker for the config's functional identity.

    Keyed exactly like the one-shot plan's ``hits`` section — bit
    split × ways × schedule (plus the shard, if any) — so
    configurations differing only in banking, policy or power
    management share one cache-content walk per pass. The kernel
    backend is not part of the key: every backend is bit-identical, so
    whichever cursor creates the tracker fixes the backend it runs on.
    """
    geometry = config.geometry
    key = (
        "hits",
        geometry.offset_bits,
        geometry.index_bits,
        geometry.ways,
        TracePlan.schedule_key(config),
        shard,
    )
    cls = _DirectMappedTracker if geometry.ways == 1 else _LruTracker
    return plan.persistent(
        key, lambda: cls(geometry.num_sets, geometry.ways, backend, shard)
    )


class StreamCursor:
    """Carried state of one breakeven-group over a chunked pass.

    One cursor fully describes the simulation of a group of
    configurations differing only in ``breakeven_override``: the
    shared hit tracker, the advancing indexing policy, and a
    :class:`~repro.power.idleness.StreamingGapAccumulator` thresholding
    every breakeven of the group from the same carried gap state.
    Memory is O(num_sets × ways + num_banks × breakevens + chunk) —
    independent of stream length.

    ``backend`` selects the kernel backend for the tracker and gap
    walks (bit-identical across backends). ``shard`` is the
    ``(index, count)`` pair of a sharded parallel pass: the cursor then
    tracks hits only for its set partition and gaps only for its bank
    partition, and must be finalized with :meth:`finalize_partial` so
    the parent can merge the shard set back into full results.
    """

    def __init__(
        self,
        configs,
        plan: StreamingPlan,
        backend: str | None = None,
        shard: tuple[int, int] | None = None,
    ) -> None:
        if not configs:
            raise SimulationError("a stream cursor needs at least one config")
        from repro.core.fastsim import validate_breakeven_group

        validate_breakeven_group(configs)
        self.configs = list(configs)
        self.base = configs[0]
        self.policy = self.base.make_policy()
        self.num_banks = self.base.num_banks
        self.backend = backend
        self.shard = shard
        self._owned_banks = None
        owned = None
        if shard is not None:
            worker, count = shard
            if count < 1 or not 0 <= worker < count:
                raise SimulationError("shard must be (index, count) with 0 <= index < count")
            self._owned_banks = (np.arange(self.num_banks) % count) == worker
            owned = self._owned_banks
        # An unmanaged cache's effective breakeven is horizon + 1 — not
        # known until the stream ends — but its accounting is simply
        # "no gap ever converts": the accumulator's None (infinite)
        # threshold, bit-identical in every counter.
        breakevens = [
            config.breakeven() if config.power_managed else None
            for config in self.configs
        ]
        self.gaps = StreamingGapAccumulator(
            self.num_banks, breakevens, backend=backend, owned_banks=owned
        )
        self.tracker = _hit_tracker(plan, self.base, backend=backend, shard=shard)
        self.updates_applied = 0
        self.accesses = 0

    def process(self, plan: StreamingPlan) -> None:
        """Fold the plan's current chunk into the carried state."""
        chunk = plan.chunk
        n = len(chunk)
        if n == 0:
            return
        boundaries, starts = plan.epoch_segments(self.base)
        self.tracker.process_chunk(plan, self.base)
        geometry = self.base.geometry
        if self.num_banks == 1:
            if self._owned_banks is None or self._owned_banks[0]:
                sorted_cycles = chunk.cycles
                splits = np.array([0, n], dtype=np.int64)
            else:
                sorted_cycles = np.empty(0, dtype=np.int64)
                splits = np.zeros(2, dtype=np.int64)
        else:
            logical = plan.logical_banks(
                geometry.offset_bits, geometry.index_bits, self.num_banks
            )
            physical = np.empty(n, dtype=np.int64)
            for segment in range(len(starts) - 1):
                if segment > 0:
                    self.policy.update()
                lo, hi = int(starts[segment]), int(starts[segment + 1])
                if lo == hi:
                    continue
                physical[lo:hi] = self.policy.mapping()[logical[lo:hi]]
            cycles = chunk.cycles
            if self._owned_banks is not None:
                # The policy advanced over the full chunk (routing is
                # schedule-driven and identical in every shard); only
                # the owned banks' accesses feed the gap walk.
                mine = self._owned_banks[physical]
                physical = physical[mine]
                cycles = cycles[mine]
            order = np.argsort(physical, kind="stable")
            sorted_cycles = cycles[order]
            splits = np.searchsorted(
                physical[order], np.arange(self.num_banks + 1)
            ).astype(np.int64)
        self.gaps.update(sorted_cycles, splits)
        self.updates_applied += int(boundaries.size)
        self.accesses += n

    def finalize(
        self, horizon: int, trace_name: str, lut: LifetimeLUT | None
    ) -> list[SimulationResult]:
        """Close the window at ``horizon``; one result per group config."""
        if self.shard is not None:
            raise SimulationError(
                "a sharded cursor holds partial counters; use finalize_partial"
            )
        stats_batch = self.gaps.finalize(horizon)
        hits = self.tracker.hits
        misses = self.accesses - hits
        flush_invalidations = self.tracker.flush_invalidations
        results = []
        for config, bank_stats in zip(self.configs, stats_batch):
            cache_stats = CacheStats(
                hits=hits, misses=misses, flushes=self.updates_applied
            )
            results.append(
                assemble_result(
                    config,
                    trace_name,
                    horizon,
                    bank_stats,
                    cache_stats,
                    self.updates_applied,
                    flush_invalidations,
                    lut,
                )
            )
        return results

    def finalize_partial(self, horizon: int) -> "StreamShardPartial":
        """Close the window and return this shard's raw counters.

        The picklable half of a sharded pass: hits and flush
        invalidations cover only the owned sets, the per-bank stats
        only the owned banks (non-owned rows are all-zero with
        ``total_cycles == 0``), while ``accesses`` and
        ``updates_applied`` cover the full stream — every shard sees
        the whole schedule, so the parent asserts they agree and sums
        only the partitioned counters.
        """
        return StreamShardPartial(
            accesses=self.accesses,
            hits=self.tracker.hits,
            flush_invalidations=self.tracker.flush_invalidations,
            updates_applied=self.updates_applied,
            stats_batch=self.gaps.finalize(horizon),
        )


@dataclass(frozen=True)
class StreamShardPartial:
    """One shard's contribution to a streamed breakeven group."""

    accesses: int
    hits: int
    flush_invalidations: int
    updates_applied: int
    stats_batch: list[list[BankIdleStats]]


def merge_shard_partials(
    configs,
    partials: list[StreamShardPartial],
    horizon: int,
    trace_name: str,
    lut: LifetimeLUT | None,
) -> list[SimulationResult]:
    """Recombine a full shard set into the serial pass's results.

    Hits and flush invalidations sum across the disjoint set
    partitions; per-bank stats merge elementwise across the disjoint
    bank partitions (exactly one shard owns each bank, so summed
    counters — including ``total_cycles`` — reproduce the serial
    accumulator's). ``accesses``/``updates_applied`` must agree across
    shards: every worker replays the identical schedule.
    """
    if not partials:
        raise SimulationError("cannot merge an empty shard set")
    first = partials[0]
    for other in partials[1:]:
        if (
            other.accesses != first.accesses
            or other.updates_applied != first.updates_applied
        ):
            raise SimulationError(
                "stream shards disagree on the access count or update "
                "schedule; the stream is not replaying identically"
            )
    hits = sum(partial.hits for partial in partials)
    flush_invalidations = sum(partial.flush_invalidations for partial in partials)
    misses = first.accesses - hits
    results = []
    for row, config in enumerate(configs):
        merged = first.stats_batch[row]
        for other in partials[1:]:
            merged = [
                mine.merge(theirs)
                for mine, theirs in zip(merged, other.stats_batch[row])
            ]
        cache_stats = CacheStats(
            hits=hits, misses=misses, flushes=first.updates_applied
        )
        results.append(
            assemble_result(
                config,
                trace_name,
                horizon,
                merged,
                cache_stats,
                first.updates_applied,
                flush_invalidations,
                lut,
            )
        )
    return results


def _finished_horizon(stream: TraceStream) -> int:
    horizon = stream.horizon
    if horizon is None:
        raise SimulationError(
            "stream did not resolve its horizon after exhaustion"
        )
    return int(horizon)


def run_streaming_group(
    configs,
    stream: TraceStream,
    lut: LifetimeLUT | None = None,
    plan: StreamingPlan | None = None,
    backend: str | None = None,
) -> list[SimulationResult]:
    """Simulate a breakeven-only config group in one pass over ``stream``.

    The streaming analogue of
    :func:`~repro.core.fastsim.run_breakeven_group`: one chunked pass,
    one carried gap state, every breakeven thresholded incrementally.
    Results are bit-identical to the one-shot group on the materialized
    trace.
    """
    if not configs:
        return []
    plan = plan if plan is not None else StreamingPlan()
    cursor = StreamCursor(configs, plan, backend=backend)
    for chunk in stream.chunks():
        plan.begin_chunk(chunk)
        cursor.process(plan)
    return cursor.finalize(_finished_horizon(stream), stream.name, lut)


def run_streaming(
    config,
    stream: TraceStream,
    lut: LifetimeLUT | None = None,
    plan: StreamingPlan | None = None,
    backend: str | None = None,
) -> SimulationResult:
    """Simulate one configuration from a chunked stream (out-of-core)."""
    return run_streaming_group([config], stream, lut=lut, plan=plan, backend=backend)[0]


def simulate_stream(
    config,
    stream: TraceStream,
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
) -> SimulationResult:
    """Dispatching front-end for streaming simulation.

    Mirrors :func:`~repro.core.simulator.simulate`, but takes a
    :class:`~repro.trace.stream.TraceStream`. The resolved engine must
    expose the ``run_streaming`` capability (the fast engine does;
    ``auto`` therefore streams for every banked configuration); engines
    without it fail loudly rather than silently materializing the
    trace.
    """
    chosen = resolve_engine(engine, config)
    run = getattr(chosen, "run_streaming", None)
    if run is None:
        raise SimulationError(
            f"engine {chosen.name!r} does not support streaming simulation; "
            "materialize the trace (repro.trace.stream.stream_to_trace) or "
            "pick an engine with the run_streaming capability"
        )
    return run(config, stream, lut=lut)


#: Per-worker shared state for the sharded streaming pass, installed
#: once by :func:`_init_stream_worker` so shard payloads carry only the
#: shard coordinates and the combos.
_worker_stream = None
_worker_base = None
_worker_names: list | None = None
_worker_engine: str | None = None


def _init_stream_worker(
    stream,
    base,
    names,
    engine: str,
    engines: tuple = (),
    metrics: tuple = (),
    templates: tuple = (),
) -> None:
    """Pool initializer for shard workers (mirrors the sweep pool's).

    ``stream`` is either a :class:`~repro.trace.stream.TraceStream` or
    a zero-argument factory producing one; plugin engine/metric
    registrations travel from the parent exactly as in
    :func:`repro.analysis.sweep._init_worker`.
    """
    from repro.core.engine import install_engines
    from repro.core.metrics import install_metrics, install_templates

    install_templates(templates)
    install_metrics(metrics)
    install_engines(engines)
    global _worker_stream, _worker_base, _worker_names, _worker_engine
    _worker_stream = stream
    _worker_base = base
    _worker_names = names
    _worker_engine = engine


def _shard_pass(payload):
    """Worker for the sharded streaming pass: one full pass, one shard.

    Module-level (not a closure) so it pickles into pool workers. The
    worker re-opens the stream (``chunks()`` is repeatable by
    contract), advances every group's cursor over its set/bank
    partition, and returns the raw partial counters — result assembly
    happens in the parent after the merge.
    """
    shard_index, shard_count, group_items = payload
    stream = _worker_stream() if callable(_worker_stream) else _worker_stream
    plan = StreamingPlan()
    cursors = []
    for group_id, group_combos in group_items:
        configs = [
            replace(_worker_base, **dict(zip(_worker_names, combo)))
            for combo in group_combos
        ]
        chosen = resolve_engine(_worker_engine, configs[0])
        cursors.append(
            (group_id, chosen.open_stream_cursor(configs, plan, shard=(shard_index, shard_count)))
        )
    for chunk in stream.chunks():
        plan.begin_chunk(chunk)
        for _, cursor in cursors:
            cursor.process(plan)
    horizon = _finished_horizon(stream)
    return (
        stream.name,
        horizon,
        [(group_id, cursor.finalize_partial(horizon)) for group_id, cursor in cursors],
    )


def _shardable(groups, base, names, combos, engine: str, stream) -> str | None:
    """Why the pass cannot shard across processes (``None`` = it can)."""
    for members in groups.values():
        config = replace(base, **dict(zip(names, combos[members[0]])))
        chosen = resolve_engine(engine, config)
        if not getattr(chosen, "supports_stream_shards", False):
            return f"engine {chosen.name!r} does not support sharded streaming"
    if not callable(stream):
        try:
            pickle.dumps(stream)
        except Exception:
            return (
                "the stream does not pickle and no stream factory was given; "
                "pass a zero-argument callable producing the stream"
            )
    return None


def stream_selected(
    base,
    stream,
    names,
    combos,
    group_ids=None,
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    on_result=None,
    parallel: int | None = None,
) -> list[SimulationResult]:
    """Evaluate many grid points in a **single pass** over ``stream``.

    The streaming counterpart of
    :func:`~repro.analysis.sweep.simulate_selected`: one cursor per
    breakeven group (per-point groups when ``group_ids`` is ``None``),
    all advanced chunk by chunk through one shared
    :class:`~repro.core.plan.StreamingPlan`, so the stream is read
    once however many points the grid has and peak memory stays
    O(chunk + per-point carried state).

    ``stream`` is a :class:`~repro.trace.stream.TraceStream` or a
    zero-argument factory producing one (a factory is what lets the
    pass parallelize when the stream itself cannot pickle).

    ``parallel=N`` shards the pass across ``N`` worker processes by
    set/bank partition — each worker runs the full pass over its own
    re-opened stream but tracks only its partition's counters, and the
    parent merges the shard set back into full results, bit-identical
    to the serial pass. When sharding is impossible (an engine without
    the capability, or a stream that cannot travel to workers) the
    pass emits a :class:`~repro.errors.ReproWarning` and runs serially
    instead of silently ignoring the flag.

    The single-pass path requires the resolved engine to expose the
    ``open_stream_cursor`` capability (the fast engine's). A group
    whose engine only exposes ``run_streaming`` gets its own pass over
    the stream — semantically its own engine's, just without the
    shared-pass economy; an engine with neither capability fails
    loudly. Results come back in ``combos`` order, bit-identical to
    the in-memory path, and ``on_result(position, result)`` fires per
    point after its group finalizes.
    """
    validate_engine(engine)
    if parallel is not None and parallel < 1:
        raise ConfigurationError("parallel must be a positive worker count")
    if not combos:
        return []
    if group_ids is None:
        group_ids = list(range(len(combos)))
    groups: dict[int, list[int]] = {}
    for position, group_id in enumerate(group_ids):
        groups.setdefault(group_id, []).append(position)

    shared_lut = lut if lut is not None else LifetimeLUT.default()

    workers = parallel or 1
    if workers > 1:
        reason = _shardable(groups, base, names, combos, engine, stream)
        if reason is None:
            return _stream_selected_parallel(
                base,
                stream,
                names,
                combos,
                groups,
                shared_lut,
                engine,
                on_result,
                workers,
            )
        warnings.warn(
            f"parallel={parallel} requested but the streaming pass cannot "
            f"be sharded ({reason}); running the serial single pass",
            ReproWarning,
            stacklevel=2,
        )

    stream = stream() if callable(stream) else stream
    plan = StreamingPlan()
    cursors: list[tuple[list[int], StreamCursor]] = []
    own_pass: list[tuple[list[int], list, object]] = []
    for members in groups.values():
        configs = [
            replace(base, **dict(zip(names, combos[position])))
            for position in members
        ]
        chosen = resolve_engine(engine, configs[0])
        opener = getattr(chosen, "open_stream_cursor", None)
        if opener is not None:
            cursors.append((members, opener(configs, plan)))
        elif getattr(chosen, "run_streaming", None) is not None:
            own_pass.append((members, configs, chosen))
        else:
            raise SimulationError(
                f"engine {chosen.name!r} does not support streaming simulation"
            )

    results: list[SimulationResult | None] = [None] * len(combos)

    def emit(position: int, result: SimulationResult) -> None:
        results[position] = result
        if on_result is not None:
            on_result(position, result)

    if cursors:
        for chunk in stream.chunks():
            plan.begin_chunk(chunk)
            for _, cursor in cursors:
                cursor.process(plan)
        horizon = _finished_horizon(stream)
        for members, cursor in cursors:
            for position, result in zip(
                members, cursor.finalize(horizon, stream.name, shared_lut)
            ):
                emit(position, result)

    for members, configs, chosen in own_pass:
        run_group = getattr(chosen, "run_streaming_group", None)
        if run_group is not None:
            group_results = run_group(configs, stream, lut=shared_lut)
        else:
            group_results = [
                chosen.run_streaming(config, stream, lut=shared_lut)
                for config in configs
            ]
        for position, result in zip(members, group_results):
            emit(position, result)
    return results


def _stream_selected_parallel(
    base,
    stream,
    names,
    combos,
    groups: dict[int, list[int]],
    lut: LifetimeLUT,
    engine: str,
    on_result,
    workers: int,
) -> list[SimulationResult]:
    """Sharded fan-out of one streaming pass (see :func:`stream_selected`).

    Worker ``w`` of ``workers`` runs the full pass but tracks hits
    only for sets with ``set % workers == w`` and gaps only for banks
    with ``bank % workers == w``; the parent merges each group's shard
    set with :func:`merge_shard_partials` and emits results in
    ``combos`` order. The stream (or its factory) and the grid travel
    once per worker through the pool initializer; shard payloads carry
    only the coordinates and combos.
    """
    from repro.core.engine import custom_engines
    from repro.core.metrics import custom_metrics, custom_templates

    group_items = [
        (group_id, [combos[position] for position in members])
        for group_id, members in groups.items()
    ]
    payloads = [(worker, workers, group_items) for worker in range(workers)]
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_stream_worker,
        initargs=(
            stream,
            base,
            names,
            engine,
            custom_engines(),
            custom_metrics(),
            custom_templates(),
        ),
    ) as pool:
        outputs = list(pool.map(_shard_pass, payloads))

    identities = {(name, horizon) for name, horizon, _ in outputs}
    if len(identities) != 1:
        raise SimulationError(
            "stream shards disagree on the stream identity or horizon; "
            "the stream is not replaying identically across workers"
        )
    stream_name, horizon, _ = outputs[0]
    partials_by_group: dict[int, list[StreamShardPartial]] = {
        group_id: [] for group_id in groups
    }
    for _, _, items in outputs:
        for group_id, partial in items:
            partials_by_group[group_id].append(partial)

    results: list[SimulationResult | None] = [None] * len(combos)
    for group_id, members in groups.items():
        configs = [
            replace(base, **dict(zip(names, combos[position])))
            for position in members
        ]
        merged = merge_shard_partials(
            configs, partials_by_group[group_id], horizon, stream_name, lut
        )
        for position, result in zip(members, merged):
            results[position] = result
            if on_result is not None:
                on_result(position, result)
    return results
