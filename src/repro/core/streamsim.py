"""Streaming (out-of-core) simulation: chunked traces, carried state.

The one-shot fast engine (:mod:`repro.core.fastsim`) needs the whole
trace resident to sort and scan it. This module is its streaming
counterpart: the trace arrives as :class:`~repro.trace.stream.TraceChunk`
windows and every piece of engine state is *carried* across chunk
boundaries instead of recomputed from a global view —

* **hits/flushes** — a real cache-content model per (bit split, ways,
  schedule) identity: direct-mapped geometries carry one tag per set
  (:class:`_DirectMappedTracker`), set-associative ones carry the full
  LRU stacks (:class:`_LruTracker`, the lockstep rank walk of
  :meth:`~repro.core.fastsim.FastSimulator._grouped_lru` with an
  initial state). Both match the one-shot counts exactly because a
  cache set's contents after any access prefix are history-independent
  summaries the carried state captures completely;
* **routing** — the indexing policy object advances at each update
  boundary as it fires (the reference engine's lazy drain), and each
  chunk is routed and bank-sorted locally;
* **idleness** — the carry-state
  :class:`~repro.power.idleness.StreamingGapAccumulator`, whose only
  cross-chunk state is each bank's last-access cycle;
* **epochs/decode** — shared per chunk through
  :class:`~repro.core.plan.StreamingPlan`, so a multi-configuration
  pass decodes each chunk once per distinct key.

Every finalized :class:`~repro.core.results.SimulationResult` is
**bit-identical** to the one-shot engine on the materialized trace (the
streaming fuzz suite enforces this across banks, ways, policies,
breakevens and adversarial chunk sizes), while peak memory is bounded
by the chunk size, not the trace length
(``benchmarks/bench_stream.py`` measures it).

Entry points: :func:`run_streaming` / :func:`run_streaming_group`
(exposed as capabilities on the fast engine — see
:class:`~repro.core.fastsim.FastEngine`), :func:`simulate_stream` (the
dispatching front-end mirroring
:func:`~repro.core.simulator.simulate`), and
:func:`stream_selected` (single-pass evaluation of many grid points,
used by :func:`~repro.analysis.sweep.stream_sweep` and the campaign
runner).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.aging.lut import LifetimeLUT
from repro.cache.stats import CacheStats
from repro.core.engine import resolve_engine, validate_engine
from repro.core.plan import StreamingPlan, TracePlan
from repro.core.results import SimulationResult
from repro.core.simulator import assemble_result
from repro.errors import SimulationError
from repro.power.idleness import StreamingGapAccumulator
from repro.trace.stream import TraceStream


class _DirectMappedTracker:
    """Carried cache-content state of a direct-mapped geometry.

    One tag (plus a valid bit) per set — exactly what a direct-mapped
    cache remembers — so the adjacent-tag hit rule of the one-shot
    engine extends across chunk boundaries: the first access of a set
    within a chunk compares against the carried tag, later ones against
    their in-chunk predecessor.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        self.tags = np.zeros(num_sets, dtype=np.int64)
        self.valid = np.zeros(num_sets, dtype=bool)
        self.hits = 0
        self.flush_invalidations = 0
        self._chunk_id = -1

    def flush(self) -> None:
        """An update fired: count surviving lines, start the epoch cold."""
        self.flush_invalidations += int(np.count_nonzero(self.valid))
        self.valid[:] = False

    def _segment(self, index: np.ndarray, tag: np.ndarray) -> None:
        n = index.size
        if n == 0:
            return
        order = np.lexsort((np.arange(n), index))
        idx_sorted = index[order]
        tag_sorted = tag[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = idx_sorted[1:] != idx_sorted[:-1]
        # Non-first accesses of a set-run hit iff their in-chunk
        # predecessor (same set, adjacent after the sort) carried the
        # same tag — the one-shot adjacent comparison, verbatim.
        self.hits += int(np.count_nonzero(~first[1:] & (tag_sorted[1:] == tag_sorted[:-1])))
        first_pos = np.flatnonzero(first)
        first_idx = idx_sorted[first_pos]
        first_tag = tag_sorted[first_pos]
        self.hits += int(
            np.count_nonzero(self.valid[first_idx] & (self.tags[first_idx] == first_tag))
        )
        last = np.empty(n, dtype=bool)
        last[-1] = True
        last[:-1] = idx_sorted[1:] != idx_sorted[:-1]
        last_pos = np.flatnonzero(last)
        self.tags[idx_sorted[last_pos]] = tag_sorted[last_pos]
        self.valid[idx_sorted[last_pos]] = True

    def process_chunk(self, plan: StreamingPlan, config) -> None:
        """Advance through the current chunk (idempotent per chunk)."""
        if plan.chunk_id == self._chunk_id:
            return
        self._chunk_id = plan.chunk_id
        geometry = config.geometry
        index, tag = plan.decode(geometry.offset_bits, geometry.index_bits)
        _, starts = plan.epoch_segments(config)
        for segment in range(len(starts) - 1):
            if segment > 0:
                self.flush()
            lo, hi = int(starts[segment]), int(starts[segment + 1])
            if lo < hi:
                self._segment(index[lo:hi], tag[lo:hi])


class _LruTracker:
    """Carried LRU stacks of a set-associative geometry.

    The full ``(num_sets, ways)`` recency stacks are the carried state;
    each chunk segment advances them with the same lockstep rank walk as
    :meth:`~repro.core.fastsim.FastSimulator._grouped_lru`, except the
    stacks start from the carried contents instead of cold. Exact for
    the same reason the one-shot walk is: an LRU set's contents are a
    history-independent function of its most recent distinct tags.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        self.ways = ways
        self.stacks = np.full((num_sets, ways), -1, dtype=np.int64)
        self.hits = 0
        self.flush_invalidations = 0
        self._chunk_id = -1

    def flush(self) -> None:
        self.flush_invalidations += int(np.count_nonzero(self.stacks != -1))
        self.stacks[:] = -1

    def _segment(self, index: np.ndarray, tag: np.ndarray) -> None:
        n = index.size
        if n == 0:
            return
        ways = self.ways
        order = np.argsort(index, kind="stable")
        idx_sorted = index[order]
        tag_sorted = tag[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = idx_sorted[1:] != idx_sorted[:-1]
        starts = np.flatnonzero(new_group)
        group_sets = idx_sorted[starts]
        lengths = np.diff(np.append(starts, n))
        by_length = np.argsort(-lengths, kind="stable")
        sets_bl = group_sets[by_length]
        starts_bl = starts[by_length]
        lengths_bl = lengths[by_length]
        for rank in range(int(lengths_bl[0])):
            active = int(np.searchsorted(-lengths_bl, -rank, side="left"))
            current = tag_sorted[starts_bl[:active] + rank]
            rows = sets_bl[:active]
            live = self.stacks[rows]
            matches = live == current[:, None]
            hit_mask = matches.any(axis=1)
            self.hits += int(np.count_nonzero(hit_mask))
            depth = np.where(hit_mask, matches.argmax(axis=1), ways - 1)
            for way in range(ways - 1, 0, -1):
                rotate = depth >= way
                live[rotate, way] = live[rotate, way - 1]
            live[:, 0] = current
            self.stacks[rows] = live

    def process_chunk(self, plan: StreamingPlan, config) -> None:
        """Advance through the current chunk (idempotent per chunk)."""
        if plan.chunk_id == self._chunk_id:
            return
        self._chunk_id = plan.chunk_id
        geometry = config.geometry
        index, tag = plan.decode(geometry.offset_bits, geometry.index_bits)
        _, starts = plan.epoch_segments(config)
        for segment in range(len(starts) - 1):
            if segment > 0:
                self.flush()
            lo, hi = int(starts[segment]), int(starts[segment + 1])
            if lo < hi:
                self._segment(index[lo:hi], tag[lo:hi])


def _hit_tracker(plan: StreamingPlan, config):
    """Shared hit/flush tracker for the config's functional identity.

    Keyed exactly like the one-shot plan's ``hits`` section — bit
    split × ways × schedule — so configurations differing only in
    banking, policy or power management share one cache-content walk
    per pass.
    """
    geometry = config.geometry
    key = (
        "hits",
        geometry.offset_bits,
        geometry.index_bits,
        geometry.ways,
        TracePlan.schedule_key(config),
    )
    cls = _DirectMappedTracker if geometry.ways == 1 else _LruTracker
    return plan.persistent(key, lambda: cls(geometry.num_sets, geometry.ways))


class StreamCursor:
    """Carried state of one breakeven-group over a chunked pass.

    One cursor fully describes the simulation of a group of
    configurations differing only in ``breakeven_override``: the
    shared hit tracker, the advancing indexing policy, and a
    :class:`~repro.power.idleness.StreamingGapAccumulator` thresholding
    every breakeven of the group from the same carried gap state.
    Memory is O(num_sets × ways + num_banks × breakevens + chunk) —
    independent of stream length.
    """

    def __init__(self, configs, plan: StreamingPlan) -> None:
        if not configs:
            raise SimulationError("a stream cursor needs at least one config")
        from repro.core.fastsim import validate_breakeven_group

        validate_breakeven_group(configs)
        self.configs = list(configs)
        self.base = configs[0]
        self.policy = self.base.make_policy()
        self.num_banks = self.base.num_banks
        # An unmanaged cache's effective breakeven is horizon + 1 — not
        # known until the stream ends — but its accounting is simply
        # "no gap ever converts": the accumulator's None (infinite)
        # threshold, bit-identical in every counter.
        breakevens = [
            config.breakeven() if config.power_managed else None
            for config in self.configs
        ]
        self.gaps = StreamingGapAccumulator(self.num_banks, breakevens)
        self.tracker = _hit_tracker(plan, self.base)
        self.updates_applied = 0
        self.accesses = 0

    def process(self, plan: StreamingPlan) -> None:
        """Fold the plan's current chunk into the carried state."""
        chunk = plan.chunk
        n = len(chunk)
        if n == 0:
            return
        boundaries, starts = plan.epoch_segments(self.base)
        self.tracker.process_chunk(plan, self.base)
        geometry = self.base.geometry
        if self.num_banks == 1:
            sorted_cycles = chunk.cycles
            splits = np.array([0, n], dtype=np.int64)
        else:
            logical = plan.logical_banks(
                geometry.offset_bits, geometry.index_bits, self.num_banks
            )
            physical = np.empty(n, dtype=np.int64)
            for segment in range(len(starts) - 1):
                if segment > 0:
                    self.policy.update()
                lo, hi = int(starts[segment]), int(starts[segment + 1])
                if lo == hi:
                    continue
                physical[lo:hi] = self.policy.mapping()[logical[lo:hi]]
            order = np.argsort(physical, kind="stable")
            sorted_cycles = chunk.cycles[order]
            splits = np.searchsorted(
                physical[order], np.arange(self.num_banks + 1)
            ).astype(np.int64)
        self.gaps.update(sorted_cycles, splits)
        self.updates_applied += int(boundaries.size)
        self.accesses += n

    def finalize(
        self, horizon: int, trace_name: str, lut: LifetimeLUT | None
    ) -> list[SimulationResult]:
        """Close the window at ``horizon``; one result per group config."""
        stats_batch = self.gaps.finalize(horizon)
        hits = self.tracker.hits
        misses = self.accesses - hits
        flush_invalidations = self.tracker.flush_invalidations
        results = []
        for config, bank_stats in zip(self.configs, stats_batch):
            cache_stats = CacheStats(
                hits=hits, misses=misses, flushes=self.updates_applied
            )
            results.append(
                assemble_result(
                    config,
                    trace_name,
                    horizon,
                    bank_stats,
                    cache_stats,
                    self.updates_applied,
                    flush_invalidations,
                    lut,
                )
            )
        return results


def _finished_horizon(stream: TraceStream) -> int:
    horizon = stream.horizon
    if horizon is None:
        raise SimulationError(
            "stream did not resolve its horizon after exhaustion"
        )
    return int(horizon)


def run_streaming_group(
    configs,
    stream: TraceStream,
    lut: LifetimeLUT | None = None,
    plan: StreamingPlan | None = None,
) -> list[SimulationResult]:
    """Simulate a breakeven-only config group in one pass over ``stream``.

    The streaming analogue of
    :func:`~repro.core.fastsim.run_breakeven_group`: one chunked pass,
    one carried gap state, every breakeven thresholded incrementally.
    Results are bit-identical to the one-shot group on the materialized
    trace.
    """
    if not configs:
        return []
    plan = plan if plan is not None else StreamingPlan()
    cursor = StreamCursor(configs, plan)
    for chunk in stream.chunks():
        plan.begin_chunk(chunk)
        cursor.process(plan)
    return cursor.finalize(_finished_horizon(stream), stream.name, lut)


def run_streaming(
    config,
    stream: TraceStream,
    lut: LifetimeLUT | None = None,
    plan: StreamingPlan | None = None,
) -> SimulationResult:
    """Simulate one configuration from a chunked stream (out-of-core)."""
    return run_streaming_group([config], stream, lut=lut, plan=plan)[0]


def simulate_stream(
    config,
    stream: TraceStream,
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
) -> SimulationResult:
    """Dispatching front-end for streaming simulation.

    Mirrors :func:`~repro.core.simulator.simulate`, but takes a
    :class:`~repro.trace.stream.TraceStream`. The resolved engine must
    expose the ``run_streaming`` capability (the fast engine does;
    ``auto`` therefore streams for every banked configuration); engines
    without it fail loudly rather than silently materializing the
    trace.
    """
    chosen = resolve_engine(engine, config)
    run = getattr(chosen, "run_streaming", None)
    if run is None:
        raise SimulationError(
            f"engine {chosen.name!r} does not support streaming simulation; "
            "materialize the trace (repro.trace.stream.stream_to_trace) or "
            "pick an engine with the run_streaming capability"
        )
    return run(config, stream, lut=lut)


def stream_selected(
    base,
    stream: TraceStream,
    names,
    combos,
    group_ids=None,
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    on_result=None,
) -> list[SimulationResult]:
    """Evaluate many grid points in a **single pass** over ``stream``.

    The streaming counterpart of
    :func:`~repro.analysis.sweep.simulate_selected`: one cursor per
    breakeven group (per-point groups when ``group_ids`` is ``None``),
    all advanced chunk by chunk through one shared
    :class:`~repro.core.plan.StreamingPlan`, so the stream is read
    once however many points the grid has and peak memory stays
    O(chunk + per-point carried state).

    The single-pass path requires the resolved engine to expose the
    ``open_stream_cursor`` capability (the fast engine's). A group
    whose engine only exposes ``run_streaming`` gets its own pass over
    the stream — semantically its own engine's, just without the
    shared-pass economy; an engine with neither capability fails
    loudly. Results come back in ``combos`` order, bit-identical to
    the in-memory path, and ``on_result(position, result)`` fires per
    point after its group finalizes.
    """
    validate_engine(engine)
    if not combos:
        return []
    if group_ids is None:
        group_ids = list(range(len(combos)))
    groups: dict[int, list[int]] = {}
    for position, group_id in enumerate(group_ids):
        groups.setdefault(group_id, []).append(position)

    shared_lut = lut if lut is not None else LifetimeLUT.default()
    plan = StreamingPlan()
    cursors: list[tuple[list[int], StreamCursor]] = []
    own_pass: list[tuple[list[int], list, object]] = []
    for members in groups.values():
        configs = [
            replace(base, **dict(zip(names, combos[position])))
            for position in members
        ]
        chosen = resolve_engine(engine, configs[0])
        opener = getattr(chosen, "open_stream_cursor", None)
        if opener is not None:
            cursors.append((members, opener(configs, plan)))
        elif getattr(chosen, "run_streaming", None) is not None:
            own_pass.append((members, configs, chosen))
        else:
            raise SimulationError(
                f"engine {chosen.name!r} does not support streaming simulation"
            )

    results: list[SimulationResult | None] = [None] * len(combos)

    def emit(position: int, result: SimulationResult) -> None:
        results[position] = result
        if on_result is not None:
            on_result(position, result)

    if cursors:
        for chunk in stream.chunks():
            plan.begin_chunk(chunk)
            for _, cursor in cursors:
                cursor.process(plan)
        horizon = _finished_horizon(stream)
        for members, cursor in cursors:
            for position, result in zip(
                members, cursor.finalize(horizon, stream.name, shared_lut)
            ):
                emit(position, result)

    for members, configs, chosen in own_pass:
        run_group = getattr(chosen, "run_streaming_group", None)
        if run_group is not None:
            group_results = run_group(configs, stream, lut=shared_lut)
        else:
            group_results = [
                chosen.run_streaming(config, stream, lut=shared_lut)
                for config in configs
            ]
        for position, result in zip(members, group_results):
            emit(position, result)
    return results
