"""Structural summary of the architecture — the paper's overhead story.

Section III argues the proposal is cheap: the 1-hot encoder is one gate
deep, the idle counters are 5-6 bits, f() is a p-bit adder or XOR, and
uniform bank sizes keep floorplanning easy up to M = 16. ``summarize``
extracts those quantities from a config so tests and benches can check
the claims against the built hardware models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ArchitectureConfig
from repro.utils.bitops import bits_required, log2_exact


@dataclass(frozen=True)
class ArchitectureSummary:
    """Derived structural parameters of a configured architecture.

    Attributes
    ----------
    index_bits:
        ``n`` — cache index width.
    bank_bits:
        ``p`` — width of the remapped MSB field (and of f()'s datapath).
    lines_per_bank:
        Rows per bank array.
    breakeven_cycles:
        Programmed idle-counter limit.
    counter_width_bits:
        Width of each Block Control counter (paper: 5-6 bits suffice).
    tag_bits_per_line:
        Tag array width.
    wiring_energy_overhead:
        Fractional energy overhead of routing to M banks.
    """

    index_bits: int
    bank_bits: int
    lines_per_bank: int
    breakeven_cycles: int
    counter_width_bits: int
    tag_bits_per_line: int
    wiring_energy_overhead: float


def summarize(config: ArchitectureConfig) -> ArchitectureSummary:
    """Compute the structural summary of ``config``."""
    model = config.make_energy_model()
    breakeven = config.breakeven()
    return ArchitectureSummary(
        index_bits=config.geometry.index_bits,
        bank_bits=log2_exact(config.num_banks),
        lines_per_bank=model.lines_per_bank,
        breakeven_cycles=breakeven,
        counter_width_bits=bits_required(breakeven),
        tag_bits_per_line=model.tag_bits_per_line,
        wiring_energy_overhead=model.wiring_factor - 1.0,
    )
