"""Architecture configuration.

One :class:`ArchitectureConfig` fully describes a simulated cache:
geometry, partitioning, indexing policy, power management and the
technology model. Factories on the config build the runtime objects so
the two simulation engines are guaranteed to simulate the same machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cache.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.indexing.policies import IndexingPolicy, make_policy
from repro.indexing.update import UpdateSchedule
from repro.power.breakeven import breakeven_cycles
from repro.power.energy import EnergyModel, TechnologyParams
from repro.utils.bitops import is_power_of_two


@dataclass(frozen=True)
class ArchitectureConfig:
    """Complete description of a simulated cache architecture.

    Attributes
    ----------
    geometry:
        Cache geometry (size, line size, associativity).
    num_banks:
        ``M``; 1 models the monolithic cache.
    policy:
        Indexing policy name: ``static``, ``probing`` or ``scrambling``.
    power_managed:
        When False the banks never sleep (the paper's monolithic
        baseline is an unmanaged cache).
    update_period_cycles:
        Interval of the re-indexing ``update`` signal; ``None`` disables
        updates. In a deployed system this is "once a day or less",
        piggybacked on flushes; simulations compress it so several
        updates fall within the trace.
    update_events:
        Explicit strictly-increasing update cycles (e.g. from
        :func:`repro.indexing.update.poisson_flush_schedule` to model
        updates riding on irregular context-switch flushes). Overrides
        ``update_period_cycles`` when set.
    breakeven_override:
        Fixed breakeven time in cycles; ``None`` computes it from the
        energy model.
    technology:
        Energy-model coefficients.
    frequency_hz:
        Clock frequency, used only to convert cycles to seconds.
    """

    geometry: CacheGeometry
    num_banks: int = 4
    policy: str = "static"
    power_managed: bool = True
    update_period_cycles: int | None = None
    update_events: tuple[int, ...] | None = None
    breakeven_override: int | None = None
    technology: TechnologyParams = field(default_factory=TechnologyParams)
    frequency_hz: float = 400e6

    def __post_init__(self) -> None:
        if not is_power_of_two(self.num_banks):
            raise ConfigurationError(
                f"num_banks must be a power of two, got {self.num_banks}"
            )
        if self.num_banks > self.geometry.num_sets:
            raise ConfigurationError("more banks than cache sets")
        if self.update_period_cycles is not None and self.update_period_cycles < 1:
            raise ConfigurationError("update period must be >= 1")
        if self.update_events is not None:
            if any(c < 0 for c in self.update_events):
                raise ConfigurationError("update events must be non-negative")
            if any(b <= a for a, b in zip(self.update_events, self.update_events[1:])):
                raise ConfigurationError("update events must be strictly increasing")
        if self.breakeven_override is not None and self.breakeven_override < 1:
            raise ConfigurationError("breakeven must be >= 1")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.policy != "static" and self.num_banks == 1:
            raise ConfigurationError(
                "dynamic indexing needs at least two banks"
            )

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def make_policy(self) -> IndexingPolicy:
        """Fresh policy object in its initial state."""
        return make_policy(self.policy, self.num_banks)

    def make_energy_model(self) -> EnergyModel:
        """Energy model of the partitioned cache."""
        return EnergyModel(self.geometry, self.num_banks, self.technology)

    def make_baseline_energy_model(self) -> EnergyModel:
        """Energy model of the monolithic (M = 1) reference cache."""
        return EnergyModel(self.geometry, 1, self.technology)

    def make_update_schedule(self) -> UpdateSchedule:
        """Update schedule (inactive for static indexing)."""
        if self.policy == "static":
            return UpdateSchedule(None)
        if self.update_events is not None:
            return UpdateSchedule.from_events(self.update_events)
        return UpdateSchedule(self.update_period_cycles)

    def breakeven(self) -> int:
        """Breakeven time in cycles for one bank."""
        if self.breakeven_override is not None:
            return self.breakeven_override
        return breakeven_cycles(self.make_energy_model())

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_policy(self, policy: str) -> "ArchitectureConfig":
        """Copy with a different indexing policy."""
        return replace(self, policy=policy)

    def monolithic(self) -> "ArchitectureConfig":
        """The paper's baseline: one bank, no power management."""
        return replace(
            self,
            num_banks=1,
            policy="static",
            power_managed=False,
            update_period_cycles=None,
            update_events=None,
        )
