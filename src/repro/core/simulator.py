"""Reference (event-by-event) simulation engine.

This engine walks the trace one access at a time through the *actual*
behavioral hardware models: decoder D routes each index, the banked
cache arrays record hits and misses, the idleness accountant applies the
Block Control sleep rule, and the update schedule pulses f() and
flushes. It is deliberately simple — the fast engine in
:mod:`repro.core.fastsim` must agree with it exactly, and the test suite
holds the two together.
"""

from __future__ import annotations

from repro.aging.lifetime import cache_lifetime_years
from repro.aging.lut import LifetimeLUT
from repro.cache.banked import BankedCache
from repro.core.config import ArchitectureConfig
from repro.core.results import SimulationResult
from repro.power.idleness import BankIdleStats, IdlenessAccountant
from repro.trace.trace import Trace


def _effective_breakeven(config: ArchitectureConfig, horizon: int) -> int:
    """Breakeven used for accounting.

    An unmanaged cache is modelled as one whose breakeven exceeds any
    possible gap — the accounting then naturally reports zero sleep.
    """
    if not config.power_managed:
        return horizon + 1
    return config.breakeven()


def assemble_result(
    config: ArchitectureConfig,
    trace_name: str,
    horizon: int,
    bank_stats: list[BankIdleStats],
    cache_stats,
    updates_applied: int,
    flush_invalidations: int,
    lut: LifetimeLUT | None,
) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from measured counters.

    Energy and lifetime are *derived* deterministically from the config
    and the integer counters, so assembling the same counters twice —
    in particular, from a deserialized
    :class:`~repro.core.serialize.ResultRecord` — reproduces every
    field bit-identically (given the same LUT). Both engines and the
    record reader funnel through this one function.
    """
    model = config.make_energy_model()
    breakdowns = tuple(
        model.bank_energy(
            accesses=s.accesses,
            active_cycles=s.active_cycles,
            sleep_cycles=s.sleep_cycles,
            transitions=s.transitions,
        )
        for s in bank_stats
    )
    energy = sum(b.total for b in breakdowns)
    baseline = config.make_baseline_energy_model().unmanaged_energy(
        cache_stats.accesses, horizon
    )
    sleep_fractions = [s.useful_idleness for s in bank_stats]
    lifetime = cache_lifetime_years(sleep_fractions, lut=lut)
    return SimulationResult(
        config=config,
        trace_name=trace_name,
        total_cycles=horizon,
        bank_stats=tuple(bank_stats),
        cache_stats=cache_stats,
        updates_applied=updates_applied,
        flush_invalidations=flush_invalidations,
        bank_energy=breakdowns,
        energy_pj=energy,
        baseline_energy_pj=baseline,
        lifetime=lifetime,
    )


def _finish(
    config: ArchitectureConfig,
    trace: Trace,
    bank_stats: list[BankIdleStats],
    cache_stats,
    updates_applied: int,
    flush_invalidations: int,
    lut: LifetimeLUT | None,
) -> SimulationResult:
    """Common result assembly for both engines."""
    return assemble_result(
        config,
        trace.name,
        trace.horizon,
        bank_stats,
        cache_stats,
        updates_applied,
        flush_invalidations,
        lut,
    )


class ReferenceSimulator:
    """Event-by-event trace-driven simulator.

    Parameters
    ----------
    config:
        Architecture to simulate.
    lut:
        Lifetime lookup table; defaults to the shared calibrated one.
    """

    def __init__(self, config: ArchitectureConfig, lut: LifetimeLUT | None = None) -> None:
        self.config = config
        self.lut = lut

    def run(self, trace: Trace) -> SimulationResult:
        """Simulate ``trace`` and return the measurement record."""
        config = self.config
        policy = config.make_policy()
        cache = BankedCache(config.geometry, config.num_banks, policy.remapper)
        schedule = config.make_update_schedule()
        accountant = IdlenessAccountant(
            config.num_banks, _effective_breakeven(config, trace.horizon)
        )
        flush_invalidations = 0

        for cycle, address in trace:
            while schedule.due(cycle):
                policy.update()
                flush_invalidations += cache.flush()
            _, decoded = cache.access(address)
            accountant.on_access(decoded.physical_bank, cycle)

        bank_stats = accountant.finalize(trace.horizon)
        return _finish(
            config,
            trace,
            bank_stats,
            cache.stats,
            policy.updates_applied,
            flush_invalidations,
            self.lut,
        )


#: Engine names accepted by :func:`simulate` (and the CLI's ``--engine``).
ENGINE_NAMES: tuple[str, ...] = ("auto", "fast", "reference")


def validate_engine(engine: str) -> None:
    """Raise ``ValueError`` for engine names not in :data:`ENGINE_NAMES`.

    Shared by :func:`simulate` and the sweep front-end so a typo'd
    engine fails identically on every path.
    """
    if engine not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINE_NAMES)}"
        )


def simulate(
    config: ArchitectureConfig,
    trace: Trace,
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    plan=None,
) -> SimulationResult:
    """Convenience front-end: run ``trace`` on ``config``.

    ``engine`` selects the simulation engine; every layer of the
    library (sweeps, the experiment runner, the CLI, the examples)
    funnels through this dispatcher so no caller ever instantiates an
    engine it can't use:

    * ``"auto"`` (default) — the fastest engine supporting the
      configuration. Currently always the vectorized
      :class:`~repro.core.fastsim.FastSimulator`, which covers both
      direct-mapped and set-associative geometries.
    * ``"fast"`` — force the vectorized engine.
    * ``"reference"`` — force the event-by-event behavioral engine.

    ``plan`` is an optional shared :class:`~repro.core.plan.TracePlan`
    for ``trace``; the vectorized engine reads its memoized decode/sort
    state from it (the reference engine ignores it). Results are
    identical with or without a plan.
    """
    validate_engine(engine)
    if engine == "reference":
        return ReferenceSimulator(config, lut).run(trace)
    from repro.core.fastsim import FastSimulator

    return FastSimulator(config, lut, plan=plan).run(trace)
