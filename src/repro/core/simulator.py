"""Reference (event-by-event) simulation engine and the dispatch front-end.

The reference engine walks the trace one access at a time through the
*actual* behavioral hardware models: decoder D routes each index, the
banked cache arrays record hits and misses, the idleness accountant
applies the Block Control sleep rule, and the update schedule pulses
f() and flushes. It is deliberately simple — the fast engine in
:mod:`repro.core.fastsim` must agree with it exactly, and the test
suite holds the two together.

:func:`simulate` is the library-wide dispatcher. Engines live in the
registry of :mod:`repro.core.engine`; this module registers the
``reference`` engine and re-exports the registry views
(``ENGINE_NAMES``, :func:`validate_engine`) under their historical
names.
"""

from __future__ import annotations

from repro.aging.lut import LifetimeLUT
from repro.cache.banked import BankedCache
from repro.core.config import ArchitectureConfig
from repro.core.engine import Engine, register_engine, resolve_engine, validate_engine
from repro.core.metrics import compute_metrics, energy_breakdowns, lifetime_report
from repro.core.metrics import Measurement, baseline_energy
from repro.core.plan import TracePlan, ensure_plan
from repro.core.results import SimulationResult
from repro.power.idleness import BankIdleStats, IdlenessAccountant
from repro.trace.trace import Trace

__all__ = [
    "ENGINE_NAMES",
    "ReferenceSimulator",
    "assemble_result",
    "simulate",
    "validate_engine",
]


def _effective_breakeven(config: ArchitectureConfig, horizon: int) -> int:
    """Breakeven used for accounting.

    An unmanaged cache is modelled as one whose breakeven exceeds any
    possible gap — the accounting then naturally reports zero sleep.
    """
    if not config.power_managed:
        return horizon + 1
    return config.breakeven()


def assemble_result(
    config: ArchitectureConfig,
    trace_name: str,
    horizon: int,
    bank_stats: list[BankIdleStats],
    cache_stats,
    updates_applied: int,
    flush_invalidations: int,
    lut: LifetimeLUT | None,
    template: str = "banked",
    extra_metrics: dict | None = None,
    fidelity: str = "simulate",
) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from measured counters.

    Energy, lifetime and every registered eager
    :class:`~repro.core.metrics.Metric` are *derived* deterministically
    from the config and the integer counters, so assembling the same
    counters twice — in particular, from a deserialized
    :class:`~repro.core.serialize.ResultRecord` — reproduces every
    field bit-identically (given the same LUT). All engines and the
    record reader funnel through this one function.

    ``template`` selects the counter semantics (``"banked"`` banks vs
    ``"finegrain"`` lines — see :mod:`repro.core.metrics`).
    ``extra_metrics`` lets an engine attach payload values the counters
    alone cannot reproduce; registered metrics always win on name
    clashes, since the counters are the ground truth. ``fidelity``
    tags the result's execution tier (``"estimate"`` for closed-form
    predictions whose counters were synthesized, not measured).
    """
    measurement = Measurement(
        config=config,
        trace_name=trace_name,
        total_cycles=horizon,
        bank_stats=tuple(bank_stats),
        cache_stats=cache_stats,
        updates_applied=updates_applied,
        flush_invalidations=flush_invalidations,
        template=template,
    )
    breakdowns = energy_breakdowns(measurement)
    energy = sum(b.total for b in breakdowns)
    baseline = baseline_energy(measurement)
    lifetime = lifetime_report(measurement, lut)
    metrics = dict(extra_metrics or {})
    metrics.update(compute_metrics(measurement, lut))
    return SimulationResult(
        config=config,
        trace_name=trace_name,
        total_cycles=horizon,
        bank_stats=measurement.bank_stats,
        cache_stats=cache_stats,
        updates_applied=updates_applied,
        flush_invalidations=flush_invalidations,
        bank_energy=breakdowns,
        energy_pj=energy,
        baseline_energy_pj=baseline,
        lifetime=lifetime,
        metrics=metrics,
        template=template,
        fidelity=fidelity,
    )


def _finish(
    config: ArchitectureConfig,
    trace: Trace,
    bank_stats: list[BankIdleStats],
    cache_stats,
    updates_applied: int,
    flush_invalidations: int,
    lut: LifetimeLUT | None,
) -> SimulationResult:
    """Common result assembly for the banked engines."""
    return assemble_result(
        config,
        trace.name,
        trace.horizon,
        bank_stats,
        cache_stats,
        updates_applied,
        flush_invalidations,
        lut,
    )


class ReferenceSimulator:
    """Event-by-event trace-driven simulator.

    Parameters
    ----------
    config:
        Architecture to simulate.
    lut:
        Lifetime lookup table; defaults to the shared calibrated one.
    plan:
        Optional shared :class:`~repro.core.plan.TracePlan`; when
        given, the address decode is read from the plan's memoized
        ``(index, tag)`` arrays instead of re-splitting every address.
        Results are identical with or without a plan.
    """

    def __init__(
        self,
        config: ArchitectureConfig,
        lut: LifetimeLUT | None = None,
        plan: TracePlan | None = None,
    ) -> None:
        self.config = config
        self.lut = lut
        self.plan = plan

    def run(self, trace: Trace) -> SimulationResult:
        """Simulate ``trace`` and return the measurement record."""
        config = self.config
        policy = config.make_policy()
        cache = BankedCache(config.geometry, config.num_banks, policy.remapper)
        schedule = config.make_update_schedule()
        accountant = IdlenessAccountant(
            config.num_banks, _effective_breakeven(config, trace.horizon)
        )
        flush_invalidations = 0

        decoded = None
        if self.plan is not None:
            geometry = config.geometry
            plan = ensure_plan(self.plan, trace)
            decoded = plan.decode(geometry.offset_bits, geometry.index_bits)

        for position, (cycle, address) in enumerate(trace):
            while schedule.due(cycle):
                policy.update()
                flush_invalidations += cache.flush()
            if decoded is None:
                _, routed = cache.access(address)
            else:
                index_arr, tag_arr = decoded
                _, routed = cache.access_split(
                    int(tag_arr[position]), int(index_arr[position])
                )
            accountant.on_access(routed.physical_bank, cycle)

        bank_stats = accountant.finalize(trace.horizon)
        return _finish(
            config,
            trace,
            bank_stats,
            cache.stats,
            policy.updates_applied,
            flush_invalidations,
            self.lut,
        )


class ReferenceEngine(Engine):
    """Registry adapter for :class:`ReferenceSimulator` (the oracle)."""

    name = "reference"
    description = "event-by-event behavioral engine (the bit-exact oracle)"
    priority = 0

    def supports(self, config) -> bool:
        return isinstance(config, ArchitectureConfig)

    def run(self, config, trace, lut=None, plan=None):
        return ReferenceSimulator(config, lut, plan=plan).run(trace)


register_engine(ReferenceEngine())


def __getattr__(name: str):
    # ENGINE_NAMES is a *view* of the engine registry (PEP 562), so
    # engines registered at any time — including the lazily imported
    # built-ins — appear without this module re-exporting by hand.
    if name == "ENGINE_NAMES":
        from repro.core.engine import engine_names

        return engine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def simulate(
    config: ArchitectureConfig,
    trace: Trace,
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    plan=None,
) -> SimulationResult:
    """Convenience front-end: run ``trace`` on ``config``.

    ``engine`` selects a registered simulation engine by name; every
    layer of the library (sweeps, campaigns, the experiment runner, the
    CLI, the examples) funnels through this dispatcher so no caller
    ever instantiates an engine it can't use:

    * ``"auto"`` (default) — the highest-priority auto-eligible engine
      supporting the configuration; currently always the vectorized
      :class:`~repro.core.fastsim.FastSimulator`, which covers both
      direct-mapped and set-associative geometries.
    * ``"fast"`` / ``"reference"`` — force the vectorized or the
      event-by-event behavioral engine.
    * ``"finegrain"`` — the per-line drowsy template of [7]
      (:mod:`repro.finegrain`); power domains are cache lines.
    * any name added via
      :func:`~repro.core.engine.register_engine`.

    ``plan`` is an optional shared :class:`~repro.core.plan.TracePlan`
    for ``trace``; every built-in engine reads its memoized decode (and,
    where applicable, sort/epoch state) from it. Results are identical
    with or without a plan.
    """
    return resolve_engine(engine, config).run(config, trace, lut=lut, plan=plan)
