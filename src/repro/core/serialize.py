"""Serialization of simulation results.

Campaign runs (hundreds of simulations) want their results on disk in a
stable, diff-able form. This module flattens a
:class:`~repro.core.results.SimulationResult` into plain JSON types and
back into a :class:`ResultRecord`.

Format version 2 records are **exact**: the config payload is the full
:mod:`repro.campaign.codec` encoding (geometry with ``ways``,
``update_events``, ``breakeven_override``, the complete
:class:`~repro.power.energy.TechnologyParams`, ``frequency_hz``) and the
per-domain activity counters are stored in full, so a record can rebuild
the identical :class:`~repro.core.config.ArchitectureConfig`
(:meth:`ResultRecord.architecture`) and the bit-identical
:class:`SimulationResult` (:meth:`ResultRecord.to_result`) — energy,
lifetime and every registered :class:`~repro.core.metrics.Metric` are
deterministic functions of config + counters, which is why
:meth:`ResultRecord.metric` works *retroactively*: metrics registered
after a record was written still compute from it without resimulation.
Two optional v2 keys were added with the metrics pipeline and default
sensibly when absent (older files load unchanged): ``template`` (the
counter semantics — ``"banked"`` banks or ``"finegrain"`` lines) and
``metrics`` (the values computed at write time; registered metrics are
recomputed on read, stored values only survive for engine payloads no
registered metric reproduces). A third optional key, ``fidelity``,
tags estimated records (``"estimate"``); it is *omitted* for simulated
results so simulated record bytes are unchanged from before the
fidelity tier existed.

Version 1 files (the old lossy summary) still load: the reader migrates
their config summary into a best-effort v2 payload — geometry and
policy fields carry over exactly; ``update_events`` (never stored) is
``None``; technology and frequency take the calibrated defaults; the
stored effective ``breakeven`` becomes ``breakeven_override`` so the
rebuilt config reproduces the original sleep accounting even if the
original technology differed. v1 records cannot rebuild a full
``SimulationResult`` (their bank counters are incomplete) and say so.

All files are written atomically (temp file + ``os.replace``), so an
interrupted campaign never leaves a truncated JSON behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass

from repro.core.results import SimulationResult
from repro.errors import ReproError


class SerializationError(ReproError):
    """A result file is malformed or from an incompatible version."""


#: Format version written into every file. v2 = exact configs + full
#: per-bank counters; v1 (read-only) = the old lossy summary.
FORMAT_VERSION = 2

#: Versions the reader accepts.
_READABLE_VERSIONS = (1, 2)


def write_json_atomic(path: str | os.PathLike, payload) -> None:
    """Write ``payload`` as JSON via a temp file + ``os.replace``.

    The destination either keeps its previous content or receives the
    complete new content — a crash mid-write can never truncate it.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600 files; widen to the umask-honoring mode
        # a plain open() would have used, or the renamed result file
        # stays owner-only readable in shared campaign directories.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _jsonify_metric_value(value):
    """Metric values as plain JSON types (numpy scalars/tuples included)."""
    if isinstance(value, (list, tuple)):
        return [_jsonify_metric_value(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    try:
        return float(value)
    except (TypeError, ValueError):
        return repr(value)


def result_to_dict(result: SimulationResult) -> dict:
    """Flatten a result into JSON-safe types (format version 2)."""
    # Imported lazily: repro.campaign imports this module for atomic
    # writes and records, so the codec import must not run at import
    # time here.
    from repro.campaign.codec import config_to_dict

    bank_stats = result.bank_stats
    payload = {
        "version": FORMAT_VERSION,
        "template": result.template,
        "metrics": {
            name: _jsonify_metric_value(value)
            for name, value in sorted(result.metrics.items())
        },
        "config": config_to_dict(result.config),
        "trace_name": result.trace_name,
        "total_cycles": result.total_cycles,
        "hits": result.cache_stats.hits,
        "misses": result.cache_stats.misses,
        "flushes": result.cache_stats.flushes,
        "updates_applied": result.updates_applied,
        "flush_invalidations": result.flush_invalidations,
        "bank_idleness": list(result.bank_idleness),
        "bank_accesses": [s.accesses for s in bank_stats],
        "bank_transitions": [s.transitions for s in bank_stats],
        "bank_idle_intervals": [s.idle_intervals for s in bank_stats],
        "bank_useful_intervals": [s.useful_intervals for s in bank_stats],
        "bank_idle_cycles": [s.idle_cycles for s in bank_stats],
        "bank_sleep_cycles": [s.sleep_cycles for s in bank_stats],
        "bank_total_cycles": [s.total_cycles for s in bank_stats],
        "energy_pj": result.energy_pj,
        "baseline_energy_pj": result.baseline_energy_pj,
        "energy_savings": result.energy_savings,
        "lifetime_years": result.lifetime_years,
        "bank_lifetimes_years": list(result.lifetime.bank_lifetimes_years),
        "limiting_bank": result.lifetime.limiting_bank,
        "hit_rate": result.hit_rate,
    }
    if result.fidelity != "simulate":
        # Simulated payloads stay byte-identical to the pre-fidelity
        # format; only estimated records carry the tag.
        payload["fidelity"] = result.fidelity
    return payload


def _upgrade_v1_config(summary: dict) -> dict:
    """Best-effort exact-codec payload from a v1 config summary."""
    try:
        return {
            "geometry": {
                "size_bytes": summary["size_bytes"],
                "line_size": summary["line_size"],
                "ways": summary.get("ways", 1),
            },
            "num_banks": summary["num_banks"],
            "policy": summary["policy"],
            "power_managed": summary["power_managed"],
            "update_period_cycles": summary["update_period_cycles"],
            "update_events": None,
            # v1 stored the *effective* breakeven; pinning it as the
            # override preserves the original accounting under the
            # default technology assumed below.
            "breakeven_override": summary.get("breakeven"),
            "technology": None,
            "frequency_hz": 400e6,
        }
    except KeyError as exc:
        raise SerializationError(f"v1 config summary missing field {exc}") from exc


@dataclass(frozen=True)
class ResultRecord:
    """Read-back view of a serialized result."""

    version: int
    config: dict
    trace_name: str
    total_cycles: int
    hits: int
    misses: int
    flushes: int
    updates_applied: int
    flush_invalidations: int
    bank_idleness: tuple[float, ...]
    bank_accesses: tuple[int, ...]
    bank_transitions: tuple[int, ...]
    energy_pj: float
    baseline_energy_pj: float
    energy_savings: float
    lifetime_years: float
    bank_lifetimes_years: tuple[float, ...]
    limiting_bank: int
    hit_rate: float
    bank_idle_intervals: tuple[int, ...] | None = None
    bank_useful_intervals: tuple[int, ...] | None = None
    bank_idle_cycles: tuple[int, ...] | None = None
    bank_sleep_cycles: tuple[int, ...] | None = None
    bank_total_cycles: tuple[int, ...] | None = None
    #: Counter template ("banked" or "finegrain"); files written before
    #: the metrics pipeline carry no template key and default to banked.
    template: str = "banked"
    #: The metrics mapping stored at write time. Registered metrics are
    #: always *recomputed* from the counters on read (so metrics added
    #: after the file was written still appear); stored values only
    #: survive for engine payloads no registered metric reproduces.
    stored_metrics: dict | None = None
    #: Execution fidelity tier; files written by simulation engines
    #: carry no fidelity key and default to "simulate".
    fidelity: str = "simulate"

    @classmethod
    def from_dict(cls, payload: dict) -> "ResultRecord":
        """Validate and build a record from parsed JSON (v1 or v2)."""
        version = payload.get("version")
        if version not in _READABLE_VERSIONS:
            raise SerializationError(
                f"unsupported result version {version!r}"
            )
        try:
            if version == 1:
                config = _upgrade_v1_config(dict(payload["config"]))
                counters: dict = {}
            else:
                config = dict(payload["config"])
                counters = {
                    "bank_idle_intervals": tuple(payload["bank_idle_intervals"]),
                    "bank_useful_intervals": tuple(payload["bank_useful_intervals"]),
                    "bank_idle_cycles": tuple(payload["bank_idle_cycles"]),
                    "bank_sleep_cycles": tuple(payload["bank_sleep_cycles"]),
                    "bank_total_cycles": tuple(payload["bank_total_cycles"]),
                }
            return cls(
                version=version,
                config=config,
                trace_name=payload["trace_name"],
                total_cycles=payload["total_cycles"],
                hits=payload["hits"],
                misses=payload["misses"],
                flushes=payload["flushes"],
                updates_applied=payload["updates_applied"],
                flush_invalidations=payload["flush_invalidations"],
                bank_idleness=tuple(payload["bank_idleness"]),
                bank_accesses=tuple(payload["bank_accesses"]),
                bank_transitions=tuple(payload["bank_transitions"]),
                energy_pj=payload["energy_pj"],
                baseline_energy_pj=payload["baseline_energy_pj"],
                energy_savings=payload["energy_savings"],
                lifetime_years=payload["lifetime_years"],
                bank_lifetimes_years=tuple(payload["bank_lifetimes_years"]),
                limiting_bank=payload["limiting_bank"],
                hit_rate=payload["hit_rate"],
                template=str(payload.get("template", "banked")),
                fidelity=str(payload.get("fidelity", "simulate")),
                stored_metrics=(
                    dict(payload["metrics"])
                    if isinstance(payload.get("metrics"), dict)
                    else None
                ),
                **counters,
            )
        except KeyError as exc:
            raise SerializationError(f"missing field {exc}") from exc

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def architecture(self):
        """Rebuild the :class:`ArchitectureConfig` via the exact codec.

        Exact for v2 records; best-effort for migrated v1 records (see
        module docstring).
        """
        from repro.campaign.codec import config_from_dict

        payload = dict(self.config)
        if payload.get("technology") is None:
            payload.pop("technology", None)
        return config_from_dict(payload)

    def to_result(self, lut=None) -> SimulationResult:
        """Rebuild the full, bit-identical :class:`SimulationResult`.

        Energy and lifetime are recomputed from the exact config and the
        stored integer counters through the same assembly path both
        engines use, so every derived field matches the original run
        exactly (given the same lifetime LUT).

        Raises
        ------
        SerializationError
            For v1 records, whose counters are incomplete.
        """
        if self.version < 2 or self.bank_sleep_cycles is None:
            raise SerializationError(
                "v1 records store summary metrics only and cannot rebuild "
                "a full SimulationResult; resimulate via architecture()"
            )
        from repro.cache.stats import CacheStats
        from repro.core.simulator import assemble_result
        from repro.power.idleness import BankIdleStats

        bank_stats = [
            BankIdleStats(
                accesses=self.bank_accesses[b],
                idle_intervals=self.bank_idle_intervals[b],
                useful_intervals=self.bank_useful_intervals[b],
                idle_cycles=self.bank_idle_cycles[b],
                sleep_cycles=self.bank_sleep_cycles[b],
                transitions=self.bank_transitions[b],
                total_cycles=self.bank_total_cycles[b],
            )
            for b in range(len(self.bank_accesses))
        ]
        cache_stats = CacheStats(
            hits=self.hits, misses=self.misses, flushes=self.flushes
        )
        return assemble_result(
            config=self.architecture(),
            trace_name=self.trace_name,
            horizon=self.total_cycles,
            bank_stats=bank_stats,
            cache_stats=cache_stats,
            updates_applied=self.updates_applied,
            flush_invalidations=self.flush_invalidations,
            lut=lut,
            template=self.template,
            extra_metrics=self.stored_metrics,
            fidelity=self.fidelity,
        )

    def metric(self, name: str, lut=None):
        """Recompute metric value ``name`` from the stored counters.

        Works retroactively: a metric registered *after* this record
        was written (or a record written before the metrics pipeline
        existed) is derived from the persisted counters without any
        resimulation. Lazy metrics are computed on demand.

        Raises
        ------
        SerializationError
            For v1 records, whose counters are incomplete.
        """
        return self.to_result(lut).metric(name, lut=lut)


def read_record_file(path: str | os.PathLike) -> tuple[tuple[str, str], dict]:
    """Read one campaign-store record file: ``(key, record payload)``.

    The single place the store's on-disk record envelope (``{"key":
    {"trace_hash", "config_hash"}, "record": {...}}``) is parsed — the
    lazy store loader, the migration pass and the SQLite index rebuild
    all read record files through here, so they can never disagree
    about what a record file looks like.

    Raises
    ------
    SerializationError
        For unreadable JSON or a malformed envelope. The message names
        the file so a corrupt record in a million-file store is
        findable.
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        key = (
            str(payload["key"]["trace_hash"]),
            str(payload["key"]["config_hash"]),
        )
        record = payload["record"]
        if not isinstance(record, dict):
            raise TypeError("record payload is not a dict")
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise SerializationError(f"corrupt campaign record {path}: {exc}") from exc
    return key, record


def save_results(results, path: str | os.PathLike) -> None:
    """Write a list of results (or records' dicts) as a JSON campaign file.

    The write is atomic: an interrupted run leaves either the previous
    file or the complete new one, never a truncated JSON.
    """
    payload = {
        "version": FORMAT_VERSION,
        "results": [
            result_to_dict(r) if isinstance(r, SimulationResult) else r
            for r in results
        ],
    }
    write_json_atomic(path, payload)


def load_results(path: str | os.PathLike) -> list[ResultRecord]:
    """Read a campaign file back into records (format v1 or v2)."""
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"{path}: not valid JSON ({exc})") from exc
    if payload.get("version") not in _READABLE_VERSIONS:
        raise SerializationError(f"unsupported campaign version {payload.get('version')!r}")
    entries = payload.get("results")
    if not isinstance(entries, list):
        raise SerializationError("campaign file has no results list")
    return [ResultRecord.from_dict(entry) for entry in entries]
