"""Serialization of simulation results.

Campaign runs (hundreds of simulations) want their results on disk in a
stable, diff-able form. This module flattens a
:class:`~repro.core.results.SimulationResult` into plain JSON types and
back into a :class:`ResultRecord` (a read-back view carrying the same
derived metrics; the full config object is summarized, not rebuilt —
records are for analysis, not resimulation).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.core.results import SimulationResult
from repro.errors import ReproError


class SerializationError(ReproError):
    """A result file is malformed or from an incompatible version."""


#: Format version written into every file.
FORMAT_VERSION = 1


def result_to_dict(result: SimulationResult) -> dict:
    """Flatten a result into JSON-safe types."""
    config = result.config
    return {
        "version": FORMAT_VERSION,
        "config": {
            "size_bytes": config.geometry.size_bytes,
            "line_size": config.geometry.line_size,
            "ways": config.geometry.ways,
            "num_banks": config.num_banks,
            "policy": config.policy,
            "power_managed": config.power_managed,
            "update_period_cycles": config.update_period_cycles,
            "breakeven": config.breakeven(),
        },
        "trace_name": result.trace_name,
        "total_cycles": result.total_cycles,
        "hits": result.cache_stats.hits,
        "misses": result.cache_stats.misses,
        "flushes": result.cache_stats.flushes,
        "updates_applied": result.updates_applied,
        "flush_invalidations": result.flush_invalidations,
        "bank_idleness": list(result.bank_idleness),
        "bank_accesses": [s.accesses for s in result.bank_stats],
        "bank_transitions": [s.transitions for s in result.bank_stats],
        "energy_pj": result.energy_pj,
        "baseline_energy_pj": result.baseline_energy_pj,
        "energy_savings": result.energy_savings,
        "lifetime_years": result.lifetime_years,
        "bank_lifetimes_years": list(result.lifetime.bank_lifetimes_years),
        "limiting_bank": result.lifetime.limiting_bank,
        "hit_rate": result.hit_rate,
    }


@dataclass(frozen=True)
class ResultRecord:
    """Read-back view of a serialized result."""

    config: dict
    trace_name: str
    total_cycles: int
    hits: int
    misses: int
    flushes: int
    updates_applied: int
    flush_invalidations: int
    bank_idleness: tuple[float, ...]
    bank_accesses: tuple[int, ...]
    bank_transitions: tuple[int, ...]
    energy_pj: float
    baseline_energy_pj: float
    energy_savings: float
    lifetime_years: float
    bank_lifetimes_years: tuple[float, ...]
    limiting_bank: int
    hit_rate: float

    @classmethod
    def from_dict(cls, payload: dict) -> "ResultRecord":
        """Validate and build a record from parsed JSON."""
        if payload.get("version") != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported result version {payload.get('version')!r}"
            )
        try:
            return cls(
                config=dict(payload["config"]),
                trace_name=payload["trace_name"],
                total_cycles=payload["total_cycles"],
                hits=payload["hits"],
                misses=payload["misses"],
                flushes=payload["flushes"],
                updates_applied=payload["updates_applied"],
                flush_invalidations=payload["flush_invalidations"],
                bank_idleness=tuple(payload["bank_idleness"]),
                bank_accesses=tuple(payload["bank_accesses"]),
                bank_transitions=tuple(payload["bank_transitions"]),
                energy_pj=payload["energy_pj"],
                baseline_energy_pj=payload["baseline_energy_pj"],
                energy_savings=payload["energy_savings"],
                lifetime_years=payload["lifetime_years"],
                bank_lifetimes_years=tuple(payload["bank_lifetimes_years"]),
                limiting_bank=payload["limiting_bank"],
                hit_rate=payload["hit_rate"],
            )
        except KeyError as exc:
            raise SerializationError(f"missing field {exc}") from exc


def save_results(results, path: str | os.PathLike) -> None:
    """Write a list of results (or records' dicts) as a JSON campaign file."""
    payload = {
        "version": FORMAT_VERSION,
        "results": [
            result_to_dict(r) if isinstance(r, SimulationResult) else r
            for r in results
        ],
    }
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)


def load_results(path: str | os.PathLike) -> list[ResultRecord]:
    """Read a campaign file back into records."""
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"{path}: not valid JSON ({exc})") from exc
    if payload.get("version") != FORMAT_VERSION:
        raise SerializationError(f"unsupported campaign version {payload.get('version')!r}")
    entries = payload.get("results")
    if not isinstance(entries, list):
        raise SerializationError("campaign file has no results list")
    return [ResultRecord.from_dict(entry) for entry in entries]
