"""Minimal ASCII table rendering for experiment reports.

The experiment harness prints paper-style tables (Tables I-IV) next to the
measured values. We deliberately avoid any third-party table library: the
output must be stable enough to diff in regression tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError


def _cell(value: object, fmt: str | None) -> str:
    if value is None:
        return "-"
    if fmt is not None and isinstance(value, (int, float)) and not isinstance(value, bool):
        return format(value, fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = ".2f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Iterable of row sequences; ``None`` cells render as ``-`` and
        floats are formatted with ``float_fmt``.
    float_fmt:
        ``format()`` spec applied to float cells.
    title:
        Optional title line printed above the table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    materialised = [[_cell(v, float_fmt if isinstance(v, float) else None) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in materialised)
    return "\n".join(lines)
