"""Bit-level helpers for hardware-style address manipulation.

All cache and decoder arithmetic in this package works on non-negative
integers interpreted as fixed-width bit vectors, exactly as the RTL of the
paper's decoder block *D* (Fig. 1b) would.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def is_power_of_two(value: int) -> bool:
    """Return ``True`` if ``value`` is a positive power of two.

    >>> is_power_of_two(16)
    True
    >>> is_power_of_two(0)
    False
    >>> is_power_of_two(24)
    False
    """
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises
    ------
    ConfigurationError
        If ``value`` is not a positive power of two.

    >>> log2_exact(1024)
    10
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"{value!r} is not a positive power of two")
    return value.bit_length() - 1


def bits_required(value: int) -> int:
    """Return the number of bits needed to represent ``value`` (min 1).

    This is the counter width the Block Control logic needs to count up to
    ``value`` (the breakeven time, Section III-A1 of the paper).

    >>> bits_required(24)
    5
    >>> bits_required(0)
    1
    """
    if value < 0:
        raise ConfigurationError("bits_required() needs a non-negative value")
    return max(1, int(value).bit_length())


def mask(width: int) -> int:
    """Return a bit mask of ``width`` ones.

    >>> hex(mask(4))
    '0xf'
    """
    if width < 0:
        raise ConfigurationError("mask width must be non-negative")
    return (1 << width) - 1


def bit_slice(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    This mirrors a verilog-style part select ``value[low +: width]``.

    >>> bit_slice(0b1101_0110, 4, 4)
    13
    """
    if value < 0:
        raise ConfigurationError("bit_slice() operates on non-negative values")
    if low < 0 or width < 0:
        raise ConfigurationError("bit_slice() indices must be non-negative")
    return (value >> low) & mask(width)


def concat_bits(high: int, high_width: int, low: int, low_width: int) -> int:
    """Concatenate two bit fields: ``{high[high_width-1:0], low[low_width-1:0]}``.

    >>> bin(concat_bits(0b10, 2, 0b011, 3))
    '0b10011'
    """
    return ((high & mask(high_width)) << low_width) | (low & mask(low_width))


def reverse_bits(value: int, width: int) -> int:
    """Reverse the ``width`` least-significant bits of ``value``.

    >>> bin(reverse_bits(0b0011, 4))
    '0b1100'
    """
    if width < 0:
        raise ConfigurationError("reverse_bits width must be non-negative")
    result = 0
    for i in range(width):
        result = (result << 1) | ((value >> i) & 1)
    return result


def parity(value: int) -> int:
    """Return the XOR-parity (0 or 1) of all bits of ``value``.

    Used by the LFSR feedback network.

    >>> parity(0b1011)
    1
    """
    if value < 0:
        raise ConfigurationError("parity() operates on non-negative values")
    return bin(value).count("1") & 1
