"""Small generic utilities shared across the ``repro`` package.

Modules
-------
bitops
    Power-of-two arithmetic and bit-field extraction helpers used by the
    hardware-level models and the cache geometry code.
rng
    Deterministic, named random streams so every experiment is exactly
    reproducible from a single seed.
units
    Time and energy unit conversions (cycles/seconds/years, J/pJ).
tables
    Minimal ASCII table renderer for experiment reports.
"""

from repro.utils.bitops import (
    bit_slice,
    bits_required,
    is_power_of_two,
    log2_exact,
    mask,
)
from repro.utils.rng import RandomStreams
from repro.utils.tables import format_table
from repro.utils.units import (
    CYCLES_PER_SECOND_DEFAULT,
    SECONDS_PER_YEAR,
    cycles_to_seconds,
    joules,
    picojoules,
    seconds_to_years,
    years_to_seconds,
)

__all__ = [
    "bit_slice",
    "bits_required",
    "is_power_of_two",
    "log2_exact",
    "mask",
    "RandomStreams",
    "format_table",
    "CYCLES_PER_SECOND_DEFAULT",
    "SECONDS_PER_YEAR",
    "cycles_to_seconds",
    "seconds_to_years",
    "years_to_seconds",
    "joules",
    "picojoules",
]
