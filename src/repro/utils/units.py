"""Unit conversions used throughout the package.

The simulator counts time in *cycles*; the aging models work in *seconds*
and report lifetimes in *years* (as the paper's Tables II-IV do); the
energy model works in *picojoules*. This module centralises the
conversions so no magic constants leak into the physics code.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Seconds in a Julian year (the convention used by reliability papers).
SECONDS_PER_YEAR: float = 365.25 * 24.0 * 3600.0

#: Default clock frequency assumed when a config does not specify one.
#: 400 MHz is representative of the embedded cores that run MediaBench.
CYCLES_PER_SECOND_DEFAULT: float = 400e6


def cycles_to_seconds(cycles: float, frequency_hz: float = CYCLES_PER_SECOND_DEFAULT) -> float:
    """Convert a cycle count to seconds at the given clock frequency."""
    if frequency_hz <= 0:
        raise ConfigurationError("clock frequency must be positive")
    return float(cycles) / float(frequency_hz)


def seconds_to_cycles(seconds: float, frequency_hz: float = CYCLES_PER_SECOND_DEFAULT) -> float:
    """Convert seconds to a (possibly fractional) cycle count."""
    if frequency_hz <= 0:
        raise ConfigurationError("clock frequency must be positive")
    return float(seconds) * float(frequency_hz)


def seconds_to_years(seconds: float) -> float:
    """Convert seconds to Julian years."""
    return float(seconds) / SECONDS_PER_YEAR


def years_to_seconds(years: float) -> float:
    """Convert Julian years to seconds."""
    return float(years) * SECONDS_PER_YEAR


def picojoules(value_joules: float) -> float:
    """Express an energy given in joules as picojoules."""
    return float(value_joules) * 1e12


def joules(value_picojoules: float) -> float:
    """Express an energy given in picojoules as joules."""
    return float(value_picojoules) * 1e-12
