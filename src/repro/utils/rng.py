"""Deterministic named random streams.

Every stochastic component of the library (workload generation, scrambling
LFSR seeding, noise injection in tests) draws from a *named* stream derived
from a single master seed. Two runs with the same master seed therefore
produce bit-identical results regardless of the order in which components
ask for their streams — a property the experiment harness and the
regression tests rely on.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """A factory of independent, reproducible :class:`numpy.random.Generator`\\ s.

    Parameters
    ----------
    master_seed:
        Any integer. The same master seed always yields the same family of
        streams.

    Examples
    --------
    >>> streams = RandomStreams(1234)
    >>> g1 = streams.get("workload/adpcm.dec")
    >>> g2 = streams.get("workload/adpcm.dec")
    >>> float(g1.random()) == float(g2.random())
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)

    def seed_for(self, name: str) -> int:
        """Derive a 64-bit child seed for the stream called ``name``."""
        payload = f"{self.master_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "little")

    def get(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream called ``name``.

        Each call returns a *new* generator positioned at the start of the
        stream, so callers that need to continue a stream must hold on to
        the returned object.
        """
        return np.random.default_rng(self.seed_for(name))

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child :class:`RandomStreams` namespaced under ``name``."""
        return RandomStreams(self.seed_for(name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomStreams(master_seed={self.master_seed})"
