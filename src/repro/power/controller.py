"""The Block Control unit of Figure 1(b).

Hardware view of the sleep decision: one saturating counter per bank,
incremented every cycle the bank's one-hot select line is 0, reset when
it is 1. A saturated counter asserts the bank's ``select`` signal, which
makes the Block Selector route Vdd_low to that bank.

The reference simulator uses the gap arithmetic of
:class:`repro.power.idleness.IdlenessAccountant` for speed; this class is
the cycle-accurate ground truth, and the test suite checks that the two
views agree on every event stream.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.hw.counter import SaturatingCounter
from repro.power.state import PowerState


class BlockControl:
    """Cycle-accurate sleep controller for ``num_banks`` uniform banks.

    Parameters
    ----------
    num_banks:
        Number of banks (M).
    breakeven:
        Counter saturation value in cycles. A bank goes drowsy on the
        cycle its idle counter *exceeds* the breakeven time, i.e. after
        ``breakeven`` full non-access cycles the counter saturates and
        the next non-access cycle switches the supply. This matches the
        paper's rule: "turn a block into a low-power state if it is not
        accessed for a number of cycles greater than the breakeven time".
    """

    def __init__(self, num_banks: int, breakeven: int) -> None:
        if num_banks < 1:
            raise SimulationError("need at least one bank")
        self.num_banks = num_banks
        self.breakeven = breakeven
        self.counters = [SaturatingCounter(breakeven) for _ in range(num_banks)]
        self.states = [PowerState.ACTIVE] * num_banks
        self.sleep_cycles = [0] * num_banks
        self.transitions = [0] * num_banks
        self.cycle = 0

    @property
    def counter_width_bits(self) -> int:
        """Width of each idle counter (the paper reports 5-6 bits)."""
        return self.counters[0].width

    def step(self, accessed_bank: int | None) -> list[int]:
        """Advance one cycle; return the banks that were woken this cycle.

        ``accessed_bank`` is the bank whose one-hot line is 1 this cycle
        (or None when the cache is not accessed at all).
        """
        woken: list[int] = []
        for bank in range(self.num_banks):
            if bank == accessed_bank:
                if self.states[bank] is PowerState.DROWSY:
                    self.states[bank] = PowerState.ACTIVE
                    woken.append(bank)
                self.counters[bank].reset()
            else:
                # The supply switches only once the counter has *already*
                # saturated, so a gap of exactly `breakeven` cycles yields
                # no sleep — matching the paper's "greater than" rule and
                # the gap arithmetic of IdlenessAccountant.
                was_saturated = self.counters[bank].terminal_count
                self.counters[bank].tick()
                if was_saturated:
                    if self.states[bank] is PowerState.ACTIVE:
                        self.states[bank] = PowerState.DROWSY
                        self.transitions[bank] += 1
                    self.sleep_cycles[bank] += 1
        self.cycle += 1
        return woken

    def run_gap(self, idle_cycles: int) -> None:
        """Advance ``idle_cycles`` cycles with no access anywhere (fast path)."""
        if idle_cycles < 0:
            raise SimulationError("gap must be non-negative")
        for bank in range(self.num_banks):
            counter = self.counters[bank]
            remaining_to_saturate = max(0, self.breakeven - counter.value)
            counter.advance(idle_cycles)
            if self.states[bank] is PowerState.ACTIVE and idle_cycles > remaining_to_saturate:
                self.states[bank] = PowerState.DROWSY
                self.transitions[bank] += 1
                self.sleep_cycles[bank] += idle_cycles - remaining_to_saturate
            elif self.states[bank] is PowerState.DROWSY:
                self.sleep_cycles[bank] += idle_cycles
        self.cycle += idle_cycles
