"""Idle-interval accounting and the *useful idleness* metric.

Section III-A2 defines the useful idleness of a block as the share of
its idleness that can actually be converted into sleep: only idle
intervals longer than the breakeven time count, and for each such
interval the bank is asleep once the Block Control counter saturates —
i.e. for ``gap - breakeven`` of the ``gap`` idle cycles.

Three implementations are provided and tested against each other:

* :class:`IdlenessAccountant` — incremental, used by the reference
  simulator (one update per access);
* :func:`stats_from_access_cycles` — vectorized over a whole epoch of
  one bank's access cycles; the differential oracle for the batched
  kernel;
* :func:`idle_gaps_from_sorted_accesses` + :func:`batch_stats_from_gaps`
  — all banks at once from the bank-sorted access stream, broadcast
  over a *vector* of breakeven values so a breakeven sweep axis costs
  one gap computation. The fast simulator caches the gap structure per
  routing (via :meth:`repro.core.plan.TracePlan.idle_gaps`) and calls
  the thresholding half; :func:`batch_stats_from_sorted_accesses`
  composes the two for one-shot use.

A fourth, :class:`StreamingGapAccumulator`, is the carry-state variant
for chunked (out-of-core) traces: per-bank last-access cycles are
carried across chunk boundaries, counters fold incrementally, and the
finalized stats are bit-identical to the one-shot kernels over the
concatenated stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.kernels import dispatch as kernels


@dataclass
class BankIdleStats:
    """Idleness summary of one bank over a simulation.

    Attributes
    ----------
    accesses:
        Number of accesses routed to the bank.
    idle_intervals:
        Number of maximal idle gaps (including a trailing gap at the end
        of the simulation, if any).
    useful_intervals:
        Idle gaps longer than the breakeven time.
    idle_cycles:
        Total cycles with no access to the bank.
    sleep_cycles:
        Cycles actually spent in the drowsy state
        (``sum(gap - breakeven)`` over useful gaps).
    transitions:
        Sleep entries (equal to wake-ups, as the simulation ends awake
        accounting-wise).
    total_cycles:
        Length of the observation window.
    """

    accesses: int = 0
    idle_intervals: int = 0
    useful_intervals: int = 0
    idle_cycles: int = 0
    sleep_cycles: int = 0
    transitions: int = 0
    total_cycles: int = 0

    @property
    def useful_idleness(self) -> float:
        """Fraction of total time spent asleep — the paper's ``I`` metric."""
        if self.total_cycles == 0:
            return 0.0
        return self.sleep_cycles / self.total_cycles

    @property
    def idle_fraction(self) -> float:
        """Fraction of total time with no access (breakeven ignored)."""
        if self.total_cycles == 0:
            return 0.0
        return self.idle_cycles / self.total_cycles

    @property
    def useful_interval_fraction(self) -> float:
        """Count-based variant: share of idle intervals that are useful."""
        if self.idle_intervals == 0:
            return 0.0
        return self.useful_intervals / self.idle_intervals

    @property
    def active_cycles(self) -> int:
        """Cycles at full Vdd (total minus sleep)."""
        return self.total_cycles - self.sleep_cycles

    def merge(self, other: "BankIdleStats") -> "BankIdleStats":
        """Combine stats from two consecutive observation windows.

        The boundary gap is handled by the caller (the fast engine closes
        epochs explicitly); this just sums the counters.
        """
        return BankIdleStats(
            accesses=self.accesses + other.accesses,
            idle_intervals=self.idle_intervals + other.idle_intervals,
            useful_intervals=self.useful_intervals + other.useful_intervals,
            idle_cycles=self.idle_cycles + other.idle_cycles,
            sleep_cycles=self.sleep_cycles + other.sleep_cycles,
            transitions=self.transitions + other.transitions,
            total_cycles=self.total_cycles + other.total_cycles,
        )


class IdlenessAccountant:
    """Incremental per-bank idleness bookkeeping for the reference engine.

    Parameters
    ----------
    num_banks:
        Number of physical banks tracked.
    breakeven:
        Breakeven time in cycles (same for all banks of a uniform
        partition).
    start_cycle:
        First cycle of the observation window.

    Notes
    -----
    An access at cycle ``c`` after a previous event at cycle ``p``
    implies an idle gap of ``c - p - 1`` cycles (the access cycles
    themselves are busy). Banks are considered busy at ``start_cycle - 1``
    so a leading gap is measured like any other.
    """

    def __init__(self, num_banks: int, breakeven: int, start_cycle: int = 0) -> None:
        if num_banks < 1:
            raise SimulationError("need at least one bank")
        if breakeven < 1:
            raise SimulationError("breakeven must be >= 1 cycle")
        self.num_banks = num_banks
        self.breakeven = breakeven
        self.start_cycle = start_cycle
        self._last_event = [start_cycle - 1] * num_banks
        self._stats = [BankIdleStats() for _ in range(num_banks)]
        self._finalized = False

    def on_access(self, bank: int, cycle: int) -> bool:
        """Record an access; return True if it woke a sleeping bank."""
        if self._finalized:
            raise SimulationError("accountant already finalized")
        if not 0 <= bank < self.num_banks:
            raise SimulationError(f"bank {bank} out of range")
        last = self._last_event[bank]
        if cycle <= last:
            raise SimulationError(
                f"non-monotonic access at cycle {cycle} (last event {last})"
            )
        woke = self._close_gap(bank, cycle - last - 1)
        stats = self._stats[bank]
        stats.accesses += 1
        self._last_event[bank] = cycle
        return woke

    def _close_gap(self, bank: int, gap: int) -> bool:
        """Account one idle gap; return True if the bank had gone to sleep."""
        if gap <= 0:
            return False
        stats = self._stats[bank]
        stats.idle_intervals += 1
        stats.idle_cycles += gap
        if gap > self.breakeven:
            stats.useful_intervals += 1
            stats.sleep_cycles += gap - self.breakeven
            stats.transitions += 1
            return True
        return False

    def finalize(self, end_cycle: int) -> list[BankIdleStats]:
        """Close trailing gaps and return the per-bank stats.

        ``end_cycle`` is one past the last simulated cycle (the window is
        ``[start_cycle, end_cycle)``).
        """
        if self._finalized:
            raise SimulationError("accountant already finalized")
        total = end_cycle - self.start_cycle
        if total < 0:
            raise SimulationError("end_cycle precedes start_cycle")
        for bank in range(self.num_banks):
            self._close_gap(bank, end_cycle - self._last_event[bank] - 1)
            self._stats[bank].total_cycles = total
        self._finalized = True
        return self._stats


def stats_from_access_cycles(
    access_cycles: np.ndarray,
    breakeven: int,
    start_cycle: int,
    end_cycle: int,
) -> BankIdleStats:
    """Vectorized idleness stats for one bank over one epoch.

    Parameters
    ----------
    access_cycles:
        Strictly increasing cycle numbers of the accesses to this bank.
    breakeven:
        Breakeven time in cycles.
    start_cycle, end_cycle:
        Observation window ``[start_cycle, end_cycle)``.

    This mirrors :class:`IdlenessAccountant` exactly (tests enforce it):
    gaps are measured between consecutive accesses, plus a leading gap
    from ``start_cycle - 1`` and a trailing gap to ``end_cycle``.
    """
    cycles = np.asarray(access_cycles, dtype=np.int64)
    if cycles.size and (np.any(np.diff(cycles) <= 0)):
        raise SimulationError("access cycles must be strictly increasing")
    if cycles.size and (cycles[0] < start_cycle or cycles[-1] >= end_cycle):
        raise SimulationError("access cycles outside the observation window")

    boundaries = np.concatenate(([start_cycle - 1], cycles, [end_cycle]))
    gaps = np.diff(boundaries) - 1
    gaps = gaps[gaps > 0]
    useful = gaps[gaps > breakeven]
    return BankIdleStats(
        accesses=int(cycles.size),
        idle_intervals=int(gaps.size),
        useful_intervals=int(useful.size),
        idle_cycles=int(gaps.sum()) if gaps.size else 0,
        sleep_cycles=int((useful - breakeven).sum()) if useful.size else 0,
        transitions=int(useful.size),
        total_cycles=int(end_cycle - start_cycle),
    )


@dataclass(frozen=True)
class IdleGapStructure:
    """The breakeven-independent idle-gap view of a bank-sorted stream.

    Extracting this is the only O(accesses) part of batched idleness
    accounting; every breakeven value merely re-thresholds it. The fast
    engine caches one per routing in the trace plan, so grids whose
    points share a routing (breakeven, power-management or technology
    axes) pay for the gap pass once.
    """

    num_banks: int
    window: int
    accesses: np.ndarray
    gap_values: np.ndarray
    gap_banks: np.ndarray
    idle_intervals: np.ndarray
    idle_cycles: np.ndarray


def idle_gaps_from_sorted_accesses(
    sorted_cycles: np.ndarray,
    splits: np.ndarray,
    start_cycle: int,
    end_cycle: int,
    backend: str | None = None,
) -> IdleGapStructure:
    """Extract every bank's idle gaps from the bank-sorted stream.

    Parameters
    ----------
    sorted_cycles:
        Access cycles sorted by (bank, arrival): bank ``b`` occupies the
        slice ``sorted_cycles[splits[b]:splits[b + 1]]``, strictly
        increasing within each slice.
    splits:
        Segment boundaries, length ``num_banks + 1`` with
        ``splits[-1] == sorted_cycles.size``.
    start_cycle, end_cycle:
        Observation window ``[start_cycle, end_cycle)``.
    backend:
        Kernel backend override (see :mod:`repro.kernels.dispatch`);
        every backend produces a bit-identical structure.
    """
    cycles = np.asarray(sorted_cycles, dtype=np.int64)
    splits = np.asarray(splits, dtype=np.int64)
    num_banks = splits.size - 1
    if num_banks < 1:
        raise SimulationError("need at least one bank segment")
    window = int(end_cycle - start_cycle)
    if window < 0:
        raise SimulationError("end_cycle precedes start_cycle")
    accesses = np.diff(splits)
    if np.any(accesses < 0) or int(splits[0]) != 0 or int(splits[-1]) != cycles.size:
        raise SimulationError("splits do not partition the access stream")

    gap_values, gap_banks, accesses, idle_intervals, idle_cycles = kernels.gap_extract(
        cycles, splits, start_cycle, end_cycle, backend=backend
    )
    return IdleGapStructure(
        num_banks=num_banks,
        window=window,
        accesses=accesses,
        gap_values=gap_values,
        gap_banks=gap_banks,
        idle_intervals=idle_intervals,
        idle_cycles=idle_cycles,
    )


def batch_stats_from_gaps(
    gaps: IdleGapStructure, breakevens, backend: str | None = None
) -> list[list[BankIdleStats]]:
    """Threshold a gap structure at each breakeven: one stats list per
    breakeven, one :class:`BankIdleStats` per bank. Integer-exact.

    A ``None`` breakeven means *infinite* (no gap ever converts to
    sleep), matching :class:`StreamingGapAccumulator`; the kernels
    encode it as ``-1``.
    """
    num_banks = gaps.num_banks
    breakeven_list = [
        -1 if breakeven is None else int(breakeven) for breakeven in breakevens
    ]
    for breakeven in breakeven_list:
        if breakeven != -1 and breakeven < 1:
            raise SimulationError("breakeven must be >= 1 cycle")
    breakeven_array = np.asarray(breakeven_list, dtype=np.int64)
    useful = np.zeros((breakeven_array.size, num_banks), dtype=np.int64)
    sleep = np.zeros((breakeven_array.size, num_banks), dtype=np.int64)
    kernels.gap_threshold_batch(
        gaps.gap_values,
        gaps.gap_banks,
        num_banks,
        breakeven_array,
        useful,
        sleep,
        backend=backend,
    )
    return [
        [
            BankIdleStats(
                accesses=int(gaps.accesses[bank]),
                idle_intervals=int(gaps.idle_intervals[bank]),
                useful_intervals=int(useful[row, bank]),
                idle_cycles=int(gaps.idle_cycles[bank]),
                sleep_cycles=int(sleep[row, bank]),
                transitions=int(useful[row, bank]),
                total_cycles=gaps.window,
            )
            for bank in range(num_banks)
        ]
        for row in range(breakeven_array.size)
    ]


class StreamingGapAccumulator:
    """Carry-state idleness accounting over a chunked access stream.

    The out-of-core counterpart of
    :func:`idle_gaps_from_sorted_accesses` +
    :func:`batch_stats_from_gaps`: chunks of the bank-sorted access
    stream arrive one at a time through :meth:`update`, and the only
    state carried across chunk boundaries is each bank's last-access
    cycle — the open gap a silent bank is accumulating is implicit in
    it and is closed by the bank's next access (whenever that chunk
    arrives) or by :meth:`finalize`. Because the multiset of idle gaps
    this induces is exactly the one-shot kernel's, the finalized
    :class:`BankIdleStats` are **bit-identical** to
    :func:`batch_stats_from_sorted_accesses` over the concatenated
    stream (the streaming fuzz suite enforces this for adversarial
    chunkings, including one-cycle chunks and chunk boundaries landing
    exactly on gap edges).

    Parameters
    ----------
    num_banks:
        Number of physical banks tracked.
    breakevens:
        Vector of breakeven times to threshold at; each entry is an
        ``int >= 1`` or ``None``, where ``None`` means *infinite* (no
        gap ever converts to sleep — how an unmanaged cache is
        accounted without knowing the horizon up front).
    start_cycle:
        First cycle of the observation window.
    backend:
        Kernel backend override (see :mod:`repro.kernels.dispatch`).
    owned_banks:
        Optional boolean mask of the banks this accumulator accounts
        for. Sharded parallel streaming gives each worker a disjoint
        mask; a non-owned bank must never be fed an access, its
        trailing gap stays unclosed, and its finalized stats are
        all-zero with ``total_cycles == 0`` — so elementwise
        :meth:`BankIdleStats.merge` across a full shard set
        reconstructs the serial pass exactly. ``None`` owns every
        bank.
    """

    def __init__(
        self,
        num_banks: int,
        breakevens,
        start_cycle: int = 0,
        backend: str | None = None,
        owned_banks: np.ndarray | None = None,
    ) -> None:
        if num_banks < 1:
            raise SimulationError("need at least one bank")
        self.breakevens = list(breakevens)
        for breakeven in self.breakevens:
            if breakeven is not None and breakeven < 1:
                raise SimulationError("breakeven must be >= 1 cycle")
        self.num_banks = num_banks
        self.start_cycle = start_cycle
        self.backend = backend
        if owned_banks is None:
            self._owned = np.ones(num_banks, dtype=bool)
        else:
            self._owned = np.asarray(owned_banks, dtype=bool)
            if self._owned.shape != (num_banks,):
                raise SimulationError("owned_banks mask must have one entry per bank")
        # -1 encodes an infinite (None) breakeven for the kernels.
        self._breakeven_array = np.asarray(
            [-1 if b is None else int(b) for b in self.breakevens], dtype=np.int64
        )
        self._last_event = np.full(num_banks, start_cycle - 1, dtype=np.int64)
        self._accesses = np.zeros(num_banks, dtype=np.int64)
        self._idle_intervals = np.zeros(num_banks, dtype=np.int64)
        self._idle_cycles = np.zeros(num_banks, dtype=np.int64)
        self._useful = np.zeros((len(self.breakevens), num_banks), dtype=np.int64)
        self._sleep = np.zeros((len(self.breakevens), num_banks), dtype=np.int64)
        self._finalized = False

    def _account_gaps(self, gap_values: np.ndarray, gap_banks: np.ndarray) -> None:
        """Fold a batch of closed gaps (already ``> 0``) into the counters."""
        if gap_values.size == 0:
            return
        self._idle_intervals += np.bincount(gap_banks, minlength=self.num_banks)
        np.add.at(self._idle_cycles, gap_banks, gap_values)
        for row, breakeven in enumerate(self.breakevens):
            if breakeven is None:
                continue
            useful = gap_values > breakeven
            banks = gap_banks[useful]
            self._useful[row] += np.bincount(banks, minlength=self.num_banks)
            np.add.at(self._sleep[row], banks, gap_values[useful] - breakeven)

    def update(self, sorted_cycles: np.ndarray, splits: np.ndarray) -> None:
        """Fold one chunk of the bank-sorted stream into the counters.

        ``sorted_cycles``/``splits`` have the layout of
        :func:`idle_gaps_from_sorted_accesses`: bank ``b`` owns the
        slice ``sorted_cycles[splits[b]:splits[b + 1]]``, strictly
        increasing within each slice and later than every cycle the
        bank has already seen.
        """
        if self._finalized:
            raise SimulationError("accumulator already finalized")
        cycles = np.asarray(sorted_cycles, dtype=np.int64)
        splits = np.asarray(splits, dtype=np.int64)
        if splits.size != self.num_banks + 1:
            raise SimulationError("splits do not match the bank count")
        counts = np.diff(splits)
        if np.any(counts < 0) or int(splits[0]) != 0 or int(splits[-1]) != cycles.size:
            raise SimulationError("splits do not partition the access stream")
        if cycles.size == 0:
            return
        if np.any(counts[~self._owned] > 0):
            raise SimulationError("accesses routed to a bank this shard does not own")
        kernels.stream_gap_update(
            cycles,
            splits,
            self._last_event,
            self._accesses,
            self._idle_intervals,
            self._idle_cycles,
            self._breakeven_array,
            self._useful,
            self._sleep,
            backend=self.backend,
        )

    def finalize(self, end_cycle: int) -> list[list[BankIdleStats]]:
        """Close every open gap to ``end_cycle`` and return the stats.

        One list of per-bank :class:`BankIdleStats` per breakeven, in
        the order the breakevens were given — the same shape as
        :func:`batch_stats_from_gaps`.
        """
        if self._finalized:
            raise SimulationError("accumulator already finalized")
        window = int(end_cycle - self.start_cycle)
        if window < 0:
            raise SimulationError("end_cycle precedes start_cycle")
        if np.any(self._last_event >= end_cycle):
            raise SimulationError("access cycles outside the observation window")
        trailing = end_cycle - self._last_event - 1
        banks = np.flatnonzero((trailing > 0) & self._owned)
        self._account_gaps(trailing[banks], banks)
        self._finalized = True
        return [
            [
                BankIdleStats(
                    accesses=int(self._accesses[bank]),
                    idle_intervals=int(self._idle_intervals[bank]),
                    useful_intervals=int(self._useful[row, bank]),
                    idle_cycles=int(self._idle_cycles[bank]),
                    sleep_cycles=int(self._sleep[row, bank]),
                    transitions=int(self._useful[row, bank]),
                    total_cycles=window if self._owned[bank] else 0,
                )
                for bank in range(self.num_banks)
            ]
            for row in range(len(self.breakevens))
        ]


def batch_stats_from_sorted_accesses(
    sorted_cycles: np.ndarray,
    splits: np.ndarray,
    breakevens,
    start_cycle: int,
    end_cycle: int,
    backend: str | None = None,
) -> list[list[BankIdleStats]]:
    """All banks' idleness stats in one pass, for a vector of breakevens.

    Convenience composition of :func:`idle_gaps_from_sorted_accesses`
    and :func:`batch_stats_from_gaps`: the idle-gap structure is
    computed once and each breakeven only re-thresholds it, so a
    breakeven sweep axis costs one gap computation. Each returned list
    is exactly equal to calling :func:`stats_from_access_cycles` per
    bank slice (tests enforce it).
    """
    gaps = idle_gaps_from_sorted_accesses(
        sorted_cycles, splits, start_cycle, end_cycle, backend=backend
    )
    return batch_stats_from_gaps(gaps, breakevens, backend=backend)
