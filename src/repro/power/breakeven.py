"""Breakeven-time computation.

Section III-A1: the breakeven time is the minimum idle length that makes
switching a bank to the low-power state worthwhile; it "depends
essentially on (i) the size of the block to be turned off, and (ii) the
ratio between the energy spent in the off and in the on state". In our
model it is the transition energy divided by the leakage power saved per
drowsy cycle.

The paper reports values "in the order of a few tens of cycles",
requiring 5- or 6-bit counters; the calibrated defaults land in that
range (and the test suite pins it).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.power.energy import EnergyModel


def breakeven_cycles(model: EnergyModel) -> int:
    """Breakeven time in cycles for one bank of ``model``.

    A bank asleep for ``s`` cycles saves
    ``s · (P_leak_active − P_leak_drowsy)`` and pays one transition
    energy; the breakeven is the smallest integer ``s`` for which the
    saving exceeds the cost (at least 1 cycle).
    """
    saved_per_cycle = model.bank_leakage_power() - model.drowsy_leakage_power()
    if saved_per_cycle <= 0:
        raise ConfigurationError(
            "drowsy state saves no leakage; breakeven undefined"
        )
    cycles = math.ceil(model.transition_energy() / saved_per_cycle)
    return max(1, cycles)
