"""Bank power states.

The paper's low-power state is a *drowsy* (voltage-scaled) state rather
than power gating: memory-compiler blocks cannot be gated without
touching their internals, and voltage scaling preserves the stored data
(Section III-A1). A bank is therefore always in one of two states.
"""

from __future__ import annotations

from enum import Enum


class PowerState(Enum):
    """Operating state of one cache bank."""

    #: Full Vdd; the bank serves accesses at nominal latency.
    ACTIVE = "active"

    #: Retention voltage Vdd_low; contents preserved, access requires a
    #: wake-up transition first.
    DROWSY = "drowsy"

    @property
    def is_low_power(self) -> bool:
        """True for the drowsy state."""
        return self is PowerState.DROWSY
