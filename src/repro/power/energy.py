"""Energy model for monolithic and partitioned caches.

The paper characterizes power/energy from an industrial 45nm design kit
(STMicroelectronics); we replace it with an analytical model whose
structure follows standard SRAM energy modelling (CACTI-style) and whose
coefficients are calibrated to land near the paper's Table II savings:

* **Access energy** of an array with ``L`` rows of ``W`` bits:
  ``e_fixed + e_line·L + e_bit·W`` — the per-row term models the bitline
  capacitance seen by every access (a monolithic array pays for all of
  its rows; a bank pays only for its own), the fixed term models
  decoders, sense amplifiers and I/O that do not shrink with banking.
* **Leakage power** (per cycle): ``λ_line·L + λ_bit·(L·W)`` — dominated
  by the per-row periphery term in this technology, which is what makes
  (16kB, 32B lines) behave like (8kB, 16B lines) in Table III.
* **Drowsy state** retains data at Vdd_low and leaks
  ``drowsy_leak_ratio`` of the active leakage.
* **Transitions** (sleep entry + wake) cost a fixed part plus per-row
  and per-tag-bit parts; the paper notes tag arrays have a relatively
  larger reactivation penalty, captured by ``e_transition_per_tag_bit``.
* **Partitioning overhead**: routing address/data/control to M banks
  costs a wiring energy factor ``1 + wiring_overhead_per_bank·(M-1)``
  (characterized in the paper from reference [10]'s data), plus the tiny
  remap function f() per access.

Each bank contains its slice of the data array *and* of the tag array;
both are voltage-scaled together (the whole memory-compiler block is
switched, Section III-A1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TechnologyParams:
    """Coefficients of the 45nm-like energy model. Units: pJ and pJ/cycle."""

    #: Per-access fixed energy (decode, sense, I/O), pJ.
    e_access_fixed: float = 9.0
    #: Per-access energy per row of the accessed array, pJ.
    e_access_per_line: float = 0.02
    #: Per-access energy per bit read/written (data + tag), pJ.
    e_access_per_bit: float = 0.02
    #: Leakage per row of array periphery, pJ/cycle.
    leak_per_line: float = 0.010
    #: Leakage per stored bit, pJ/cycle.
    leak_per_bit: float = 0.00001
    #: Drowsy leakage as a fraction of active leakage.
    drowsy_leak_ratio: float = 0.04
    #: Fixed energy per sleep/wake transition pair, pJ.
    e_transition_fixed: float = 6.0
    #: Transition energy per row of the switched bank, pJ.
    e_transition_per_line: float = 0.12
    #: Extra transition energy per tag bit of the switched bank, pJ
    #: (tag reactivation penalty, Section IV-B1).
    e_transition_per_tag_bit: float = 0.004
    #: Wiring energy overhead fraction added per extra bank.
    wiring_overhead_per_bank: float = 0.015
    #: Energy of the remap function f() per access, pJ.
    e_remap_per_access: float = 0.05
    #: Physical address width used to size tags, bits.
    address_bits: int = 32

    def __post_init__(self) -> None:
        numeric = {
            "e_access_fixed": self.e_access_fixed,
            "e_access_per_line": self.e_access_per_line,
            "e_access_per_bit": self.e_access_per_bit,
            "leak_per_line": self.leak_per_line,
            "leak_per_bit": self.leak_per_bit,
            "e_transition_fixed": self.e_transition_fixed,
            "e_transition_per_line": self.e_transition_per_line,
            "e_transition_per_tag_bit": self.e_transition_per_tag_bit,
            "wiring_overhead_per_bank": self.wiring_overhead_per_bank,
            "e_remap_per_access": self.e_remap_per_access,
        }
        for name, value in numeric.items():
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative, got {value}")
        if not 0.0 <= self.drowsy_leak_ratio <= 1.0:
            raise ConfigurationError("drowsy_leak_ratio must be in [0, 1]")
        if self.address_bits < 8:
            raise ConfigurationError("address_bits must be at least 8")


@dataclass(frozen=True)
class BankEnergyBreakdown:
    """Energy tally of one bank over a simulation, in pJ."""

    dynamic: float
    leakage_active: float
    leakage_drowsy: float
    transitions: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.dynamic + self.leakage_active + self.leakage_drowsy + self.transitions


class EnergyModel:
    """Energy evaluation for a cache geometry partitioned into M banks.

    Parameters
    ----------
    geometry:
        Cache geometry (size, line size, associativity).
    num_banks:
        M; use 1 for the monolithic baseline.
    technology:
        Coefficients; defaults to the calibrated 45nm-like set.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        num_banks: int = 1,
        technology: TechnologyParams | None = None,
    ) -> None:
        if num_banks < 1:
            raise ConfigurationError("num_banks must be >= 1")
        if num_banks > geometry.num_lines:
            raise ConfigurationError("more banks than cache lines")
        self.geometry = geometry
        self.num_banks = num_banks
        self.tech = technology if technology is not None else TechnologyParams()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def lines_per_bank(self) -> int:
        """Rows in each bank's data/tag arrays."""
        return self.geometry.num_lines // self.num_banks

    @property
    def tag_bits_per_line(self) -> int:
        """Tag width per line: address bits minus index and offset bits.

        One valid bit is added, as a memory compiler would store it in
        the tag word.
        """
        tag = (
            self.tech.address_bits
            - self.geometry.index_bits
            - self.geometry.offset_bits
        )
        return max(1, tag) + 1

    @property
    def data_bits_per_line(self) -> int:
        """Data bits per line."""
        return 8 * self.geometry.line_size

    @property
    def wiring_factor(self) -> float:
        """Energy multiplier for routing to M banks (1.0 for monolithic)."""
        return 1.0 + self.tech.wiring_overhead_per_bank * (self.num_banks - 1)

    # ------------------------------------------------------------------
    # Per-event / per-cycle quantities
    # ------------------------------------------------------------------
    def access_energy(self) -> float:
        """Energy of one access to one bank (pJ), incl. remap and wiring.

        An access reads one line's data bits and its tag from the
        accessed bank only — the other banks' select lines stay low.
        """
        tech = self.tech
        array = (
            tech.e_access_fixed
            + tech.e_access_per_line * self.lines_per_bank
            + tech.e_access_per_bit * (self.data_bits_per_line + self.tag_bits_per_line)
        )
        remap = tech.e_remap_per_access if self.num_banks > 1 else 0.0
        return (array + remap) * self.wiring_factor

    def bank_leakage_power(self) -> float:
        """Active leakage of one bank, pJ/cycle, incl. wiring factor."""
        tech = self.tech
        bits = self.lines_per_bank * (self.data_bits_per_line + self.tag_bits_per_line)
        raw = tech.leak_per_line * self.lines_per_bank + tech.leak_per_bit * bits
        return raw * self.wiring_factor

    def drowsy_leakage_power(self) -> float:
        """Drowsy leakage of one bank, pJ/cycle."""
        return self.bank_leakage_power() * self.tech.drowsy_leak_ratio

    def transition_energy(self) -> float:
        """Energy of one sleep+wake pair for one bank, pJ."""
        tech = self.tech
        return (
            tech.e_transition_fixed
            + tech.e_transition_per_line * self.lines_per_bank
            + tech.e_transition_per_tag_bit * self.tag_bits_per_line * self.lines_per_bank
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def bank_energy(
        self,
        accesses: int,
        active_cycles: int,
        sleep_cycles: int,
        transitions: int,
    ) -> BankEnergyBreakdown:
        """Energy of one bank given its activity counters."""
        if min(accesses, active_cycles, sleep_cycles, transitions) < 0:
            raise ConfigurationError("activity counters must be non-negative")
        return BankEnergyBreakdown(
            dynamic=accesses * self.access_energy(),
            leakage_active=active_cycles * self.bank_leakage_power(),
            leakage_drowsy=sleep_cycles * self.drowsy_leakage_power(),
            transitions=transitions * self.transition_energy(),
        )

    def unmanaged_energy(self, total_accesses: int, total_cycles: int) -> float:
        """Energy of this cache with power management disabled (pJ).

        All banks stay at full Vdd for the whole run. With
        ``num_banks == 1`` this is the paper's monolithic baseline.
        """
        if total_accesses < 0 or total_cycles < 0:
            raise ConfigurationError("counters must be non-negative")
        leakage = self.num_banks * self.bank_leakage_power() * total_cycles
        return total_accesses * self.access_energy() + leakage

    @staticmethod
    def savings(baseline_pj: float, managed_pj: float) -> float:
        """Fractional energy saving of ``managed`` vs ``baseline``."""
        if baseline_pj <= 0:
            raise ConfigurationError("baseline energy must be positive")
        return 1.0 - managed_pj / baseline_pj
