"""Power management substrate: states, idleness, breakeven, energy.

This package models everything below the indexing layer:

* :mod:`repro.power.state` — bank power states (active / drowsy).
* :mod:`repro.power.idleness` — extraction of idle intervals from access
  streams and the paper's *useful idleness* metric (Section III-A2): the
  share of time a bank can actually spend asleep, counting only idle
  intervals longer than the breakeven time.
* :mod:`repro.power.controller` — the Block Control unit of Figure 1(b):
  one saturating counter per bank, incremented on non-access, reset on
  access; terminal count puts the bank to sleep.
* :mod:`repro.power.breakeven` — breakeven-time computation from the
  technology parameters (the counter's programmed limit).
* :mod:`repro.power.energy` — the 45nm-like energy model (per-line and
  per-bit access/leakage coefficients, tag arrays, drowsy retention,
  bank wiring overhead) used to reproduce the paper's energy savings.
"""

from repro.power.breakeven import breakeven_cycles
from repro.power.controller import BlockControl
from repro.power.energy import BankEnergyBreakdown, EnergyModel, TechnologyParams
from repro.power.idleness import (
    BankIdleStats,
    IdlenessAccountant,
    batch_stats_from_sorted_accesses,
    stats_from_access_cycles,
)
from repro.power.state import PowerState

__all__ = [
    "PowerState",
    "BankIdleStats",
    "IdlenessAccountant",
    "stats_from_access_cycles",
    "batch_stats_from_sorted_accesses",
    "BlockControl",
    "breakeven_cycles",
    "EnergyModel",
    "TechnologyParams",
    "BankEnergyBreakdown",
]
