"""Configuration and energy model of the line-granularity template.

The array is monolithic (one bank); each of its L lines has a drowsy
supply switch controlled by a per-line idle counter, exactly the
architectural template of Drowsy Caches [20] / dynamic indexing [7].
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cache.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.indexing.policies import POLICY_NAMES
from repro.power.energy import EnergyModel, TechnologyParams


@dataclass(frozen=True)
class FineGrainConfig:
    """A monolithic cache with per-line drowsy control and optional
    full-index re-indexing.

    Attributes
    ----------
    geometry:
        Cache geometry (direct-mapped).
    policy:
        ``static`` (a plain drowsy cache), ``probing`` or ``scrambling``
        (dynamic indexing over the full n-bit index, [7]).
    update_period_cycles:
        Re-indexing period; ``None`` disables updates.
    technology:
        Shared technology coefficients.
    breakeven_override:
        Per-line breakeven time; computed from the model when ``None``.
    """

    geometry: CacheGeometry
    policy: str = "static"
    update_period_cycles: int | None = None
    technology: TechnologyParams = field(default_factory=TechnologyParams)
    breakeven_override: int | None = None

    def __post_init__(self) -> None:
        if self.geometry.ways != 1:
            raise ConfigurationError(
                "the fine-grain template models direct-mapped caches"
            )
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; known: {', '.join(POLICY_NAMES)}"
            )
        if self.update_period_cycles is not None and self.update_period_cycles < 1:
            raise ConfigurationError("update period must be >= 1 cycle")
        if self.breakeven_override is not None and self.breakeven_override < 1:
            raise ConfigurationError("breakeven must be >= 1 cycle")

    def make_energy_model(self) -> "LineEnergyModel":
        """Line-level energy model for this configuration."""
        return LineEnergyModel(self.geometry, self.technology)

    def breakeven(self) -> int:
        """Per-line breakeven time in cycles."""
        if self.breakeven_override is not None:
            return self.breakeven_override
        return self.make_energy_model().line_breakeven_cycles()


class LineEnergyModel:
    """Energy accounting for the monolithic array with per-line sleep.

    Reuses the technology coefficients of :class:`TechnologyParams`:

    * every access pays the *monolithic* access energy (no banking);
    * each line leaks ``1/L`` of the array leakage and saves
      ``(1 - drowsy_ratio)`` of it while asleep;
    * a line transition costs the per-line share of the transition
      energy (no fixed bank term — the sleep devices are per line, which
      is precisely the array-internal modification the paper wants to
      avoid);
    * per-line counters add a control overhead charged per cycle.
    """

    #: Control/counter leakage overhead per line, as a fraction of the
    #: line's own leakage (per-line counters are not free).
    CONTROL_OVERHEAD: float = 0.03

    def __init__(self, geometry: CacheGeometry, technology: TechnologyParams | None = None) -> None:
        self.geometry = geometry
        self.tech = technology if technology is not None else TechnologyParams()
        self._array = EnergyModel(geometry, 1, self.tech)

    @property
    def num_lines(self) -> int:
        """Lines in the array."""
        return self.geometry.num_lines

    def access_energy(self) -> float:
        """Per-access energy (monolithic array; no banking saving)."""
        remap = self.tech.e_remap_per_access
        return self._array.access_energy() + remap

    def line_leakage_power(self) -> float:
        """Active leakage of one line (pJ/cycle), incl. control overhead."""
        share = self._array.bank_leakage_power() / self.num_lines
        return share * (1.0 + self.CONTROL_OVERHEAD)

    def line_drowsy_power(self) -> float:
        """Drowsy leakage of one line (pJ/cycle)."""
        return self.line_leakage_power() * self.tech.drowsy_leak_ratio

    def line_transition_energy(self) -> float:
        """Sleep+wake energy of one line (pJ)."""
        per_line = (
            self.tech.e_transition_per_line
            + self.tech.e_transition_per_tag_bit * self._array.tag_bits_per_line
        )
        return per_line

    def line_breakeven_cycles(self) -> int:
        """Breakeven time of one line, cycles."""
        saved = self.line_leakage_power() - self.line_drowsy_power()
        if saved <= 0:
            raise ConfigurationError("drowsy state saves no leakage")
        return max(1, math.ceil(self.line_transition_energy() / saved))

    def total_energy(
        self,
        accesses: int,
        total_cycles: int,
        total_sleep_cycles: int,
        total_transitions: int,
    ) -> float:
        """Total energy (pJ) given aggregate line activity."""
        if min(accesses, total_cycles, total_sleep_cycles, total_transitions) < 0:
            raise ConfigurationError("activity counters must be non-negative")
        active_line_cycles = self.num_lines * total_cycles - total_sleep_cycles
        return (
            accesses * self.access_energy()
            + active_line_cycles * self.line_leakage_power()
            + total_sleep_cycles * self.line_drowsy_power()
            + total_transitions * self.line_transition_energy()
        )

    def baseline_energy(self, accesses: int, total_cycles: int) -> float:
        """The same unmanaged monolithic baseline as the banked model."""
        return self._array.unmanaged_energy(accesses, total_cycles)
