"""Line-granularity power management and dynamic indexing — the
baselines the paper positions itself against.

Section II-B and III: the paper's architecture is "a coarse-grain
implementation of the scheme of [7]" (Calimera et al., ISLPED'10), which
re-indexes at *cache line* granularity and therefore achieves perfectly
uniform per-line idleness — optimal lifetime — at the cost of modifying
the SRAM array internals (per-line sleep devices, as in Gated-Vdd [19]
and Drowsy Caches [20]).

This package implements that fine-grain template so the coarse/fine
trade-off can be measured rather than argued:

* :class:`FineGrainConfig` — a monolithic array with one drowsy switch
  per line and an n-bit remap function f() over the full index;
* :class:`FineGrainSimulator` — vectorized trace-driven engine with
  per-line idle accounting (same sleep rule and breakeven semantics as
  the bank-level Block Control);
* ``policy="static"`` reproduces a conventional **drowsy cache**
  (Flautner et al., ISCA'02): per-line sleep, no re-indexing;
* ``policy="probing"``/``"scrambling"`` reproduce **dynamic indexing**
  [7]: per-line sleep plus full-index remapping.

Energy model: unlike the paper's banked organization, a fine-grain
monolithic array saves *no dynamic energy* (every access still drives
the full array) — leakage is the only lever — but its leakage lever is
sharper because each line sleeps independently. The comparison
experiment (``benchmarks/bench_finegrain.py``) shows exactly the
positioning claimed by the paper: fine-grain is the lifetime upper
bound, coarse-grain banking recovers most of it while also cutting
dynamic energy and without touching the array internals.
"""

from repro.finegrain.model import FineGrainConfig, LineEnergyModel
from repro.finegrain.sim import FineGrainMeasurement, FineGrainResult, FineGrainSimulator
from repro.finegrain.engine import FineGrainEngine

__all__ = [
    "FineGrainConfig",
    "LineEnergyModel",
    "FineGrainSimulator",
    "FineGrainMeasurement",
    "FineGrainResult",
    "FineGrainEngine",
]
