"""Vectorized simulator for the line-granularity template.

Per-line idle accounting follows the same sleep rule as the bank-level
Block Control (sleep after `breakeven` idle cycles, i.e. a gap ``g``
earns ``g - breakeven`` sleep cycles when ``g > breakeven``), applied to
every one of the L lines. The whole computation is done with sorted
segment arithmetic and ``bincount`` — no per-line Python loop — so a
1024-line cache over a million-cycle trace simulates in milliseconds.

Re-indexing here permutes the *full* n-bit index:

* probing: ``index' = (index + R) mod L``;
* scrambling: ``index' = index XOR word`` (word from the shared LFSR).

Both are bijections, so within an epoch hit/miss behaviour can be
tracked on the logical index (the simulator flushes on update, exactly
like the banked cache).

Two front doors share one measurement pass:

* :meth:`FineGrainSimulator.run` — the classic per-line
  :class:`FineGrainResult` view;
* :meth:`FineGrainSimulator.measure` — the raw integer counters (one
  :class:`~repro.power.idleness.BankIdleStats` per *line*), which is
  what the ``finegrain`` engine adapter
  (:mod:`repro.finegrain.engine`) assembles into a standard
  :class:`~repro.core.results.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aging.lut import LifetimeLUT
from repro.core.plan import TracePlan, ensure_plan
from repro.finegrain.model import FineGrainConfig
from repro.hw.lfsr import GaloisLFSR
from repro.power.idleness import (
    BankIdleStats,
    batch_stats_from_gaps,
    idle_gaps_from_sorted_accesses,
)
from repro.trace.trace import Trace


@dataclass(frozen=True)
class FineGrainMeasurement:
    """Integer counters of one fine-grain run (lines are the domains).

    Attributes
    ----------
    line_stats:
        One :class:`BankIdleStats` per line (``total_cycles`` is the
        trace horizon for every line).
    hits, misses, updates_applied:
        Functional counters.
    flush_invalidations:
        Valid lines dropped by update-induced flushes.
    breakeven:
        The per-line breakeven actually used for the accounting.
    """

    line_stats: tuple[BankIdleStats, ...]
    hits: int
    misses: int
    updates_applied: int
    flush_invalidations: int
    breakeven: int


@dataclass(frozen=True)
class FineGrainResult:
    """Measurements of one fine-grain run.

    Attributes
    ----------
    line_sleep_fraction:
        Per-line useful idleness (length L array).
    line_accesses:
        Per-line access counts.
    hits, misses, updates_applied:
        Functional counters.
    energy_pj, baseline_energy_pj:
        Managed and unmanaged-monolithic energies.
    lifetime_years:
        Cache lifetime = the worst line's lifetime.
    line_lifetimes_years:
        Per-line lifetimes (length L array).
    """

    line_sleep_fraction: np.ndarray
    line_accesses: np.ndarray
    hits: int
    misses: int
    updates_applied: int
    energy_pj: float
    baseline_energy_pj: float
    lifetime_years: float
    line_lifetimes_years: np.ndarray

    @property
    def energy_savings(self) -> float:
        """Fractional saving vs the unmanaged monolithic baseline.

        Guarded like :attr:`hit_rate`: a degenerate run with zero
        baseline energy (empty trace over a zero-cycle horizon) reports
        zero saving instead of dividing by zero.
        """
        if self.baseline_energy_pj == 0:
            return 0.0
        return 1.0 - self.energy_pj / self.baseline_energy_pj

    @property
    def hit_rate(self) -> float:
        """Hit rate over the run."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def idleness_spread(self) -> float:
        """Max - min per-line sleep fraction (0 for perfect uniformity)."""
        return float(self.line_sleep_fraction.max() - self.line_sleep_fraction.min())


class FineGrainSimulator:
    """Trace-driven simulator for :class:`FineGrainConfig`.

    An optional shared :class:`~repro.core.plan.TracePlan` supplies the
    cached address decode (the layer this simulator has in common with
    the banked engines); results are identical with or without one.
    """

    def __init__(
        self,
        config: FineGrainConfig,
        lut: LifetimeLUT | None = None,
        plan: TracePlan | None = None,
    ) -> None:
        self.config = config
        # Resolved lazily: the measurement pass (measure()) never needs
        # the LUT, so building the default one is deferred to run().
        self.lut = lut
        self.plan = plan

    # ------------------------------------------------------------------
    def _remap_epochs(self, index: np.ndarray, cycles: np.ndarray):
        """Yield ``(lo, hi, physical_index_slice)`` per re-indexing epoch."""
        config = self.config
        num_lines = config.geometry.num_lines
        n_bits = config.geometry.index_bits
        period = config.update_period_cycles if config.policy != "static" else None
        if period is None or index.size == 0:
            yield 0, index.size, index, 0
            return

        last_cycle = int(cycles[-1])
        boundaries = np.arange(period, last_cycle + 1, period, dtype=np.int64)
        starts = np.concatenate(
            ([0], np.searchsorted(cycles, boundaries, side="left"), [index.size])
        )
        lfsr = GaloisLFSR(16, seed=0xACE1) if config.policy == "scrambling" else None
        offset = 0
        word = 0
        for epoch in range(len(starts) - 1):
            if epoch > 0:
                if config.policy == "probing":
                    offset = (offset + 1) % num_lines
                else:
                    assert lfsr is not None
                    lfsr.step()
                    word = lfsr.low_bits(min(n_bits, lfsr.width))
            lo, hi = int(starts[epoch]), int(starts[epoch + 1])
            if config.policy == "probing":
                physical = (index[lo:hi] + offset) % num_lines
            else:
                physical = index[lo:hi] ^ word
            yield lo, hi, physical, epoch

    # ------------------------------------------------------------------
    def measure(self, trace: Trace, breakeven: int | None = None) -> FineGrainMeasurement:
        """Run the measurement pass and return the per-line counters.

        ``breakeven`` overrides the config-derived per-line breakeven
        (the engine adapter uses this to model an unmanaged cache as one
        whose breakeven exceeds the horizon).
        """
        config = self.config
        geometry = config.geometry
        num_lines = geometry.num_lines
        if breakeven is None:
            breakeven = config.breakeven()
        horizon = trace.horizon

        plan = ensure_plan(self.plan, trace)
        index, tag = plan.decode(geometry.offset_bits, geometry.index_bits)

        physical = np.empty(len(trace), dtype=np.int64)
        hits = 0
        updates = 0
        flush_invalidations = 0
        open_lines = 0
        for lo, hi, phys, epoch in self._remap_epochs(index, trace.cycles):
            physical[lo:hi] = phys
            # The previous epoch's surviving lines are dropped by the
            # boundary flush that opened this one.
            flush_invalidations += open_lines
            epoch_hits, open_lines = _epoch_hits(index[lo:hi], tag[lo:hi])
            hits += epoch_hits
            updates = epoch
        misses = len(trace) - hits

        line_stats = _per_line_stats(
            physical, trace.cycles, num_lines, breakeven, horizon
        )
        return FineGrainMeasurement(
            line_stats=tuple(line_stats),
            hits=hits,
            misses=misses,
            updates_applied=updates,
            flush_invalidations=flush_invalidations,
            breakeven=breakeven,
        )

    def run(self, trace: Trace) -> FineGrainResult:
        """Simulate ``trace`` and return the per-line measurements."""
        config = self.config
        num_lines = config.geometry.num_lines
        horizon = trace.horizon
        measurement = self.measure(trace)
        sleep, transitions, accesses = _stats_arrays(measurement.line_stats)

        model = config.make_energy_model()
        energy = model.total_energy(
            accesses=len(trace),
            total_cycles=horizon,
            total_sleep_cycles=int(sleep.sum()),
            total_transitions=int(transitions.sum()),
        )
        baseline = model.baseline_energy(len(trace), horizon)

        sleep_fraction = sleep / float(horizon) if horizon else np.zeros(num_lines)
        lut = self.lut if self.lut is not None else LifetimeLUT.default()
        lifetimes = lut.lifetime_years_batch(0.5, sleep_fraction)
        return FineGrainResult(
            line_sleep_fraction=sleep_fraction,
            line_accesses=accesses,
            hits=measurement.hits,
            misses=measurement.misses,
            updates_applied=measurement.updates_applied,
            energy_pj=energy,
            baseline_energy_pj=baseline,
            lifetime_years=float(lifetimes.min()),
            line_lifetimes_years=lifetimes,
        )


def _epoch_hits(index: np.ndarray, tag: np.ndarray) -> tuple[int, int]:
    """Hits and distinct lines touched within one cold-started epoch
    (same logic as the fast engine)."""
    if index.size == 0:
        return 0, 0
    order = np.lexsort((np.arange(index.size), index))
    idx_sorted = index[order]
    tag_sorted = tag[order]
    same_line = idx_sorted[1:] == idx_sorted[:-1]
    same_tag = tag_sorted[1:] == tag_sorted[:-1]
    hits = int(np.count_nonzero(same_line & same_tag))
    distinct_lines = int(np.count_nonzero(~same_line)) + 1
    return hits, distinct_lines


def _per_line_stats(
    physical: np.ndarray,
    cycles: np.ndarray,
    num_lines: int,
    breakeven: int,
    horizon: int,
) -> list[BankIdleStats]:
    """Full per-line idleness stats, fully vectorized.

    A line here is a "bank" of the shared
    :func:`~repro.power.idleness.idle_gaps_from_sorted_accesses` kernel,
    so the interior/leading/trailing/never-touched gap semantics (busy
    at cycle -1, trailing gap to ``horizon``) exist in exactly one
    place, and the thresholding is the same integer-exact
    :func:`~repro.power.idleness.batch_stats_from_gaps` the banked fast
    engine uses.
    """
    order = np.argsort(physical, kind="stable")
    lines_sorted = physical[order]
    splits = np.searchsorted(lines_sorted, np.arange(num_lines + 1))
    gaps = idle_gaps_from_sorted_accesses(cycles[order], splits, 0, horizon)
    return batch_stats_from_gaps(gaps, [breakeven])[0]


def _per_line_sleep(
    physical: np.ndarray,
    cycles: np.ndarray,
    num_lines: int,
    breakeven: int,
    horizon: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array view of :func:`_per_line_stats`: (sleep, transitions, accesses).

    Kept as the kernel-oracle interface the per-line accounting tests
    differentially check against an
    :class:`~repro.power.idleness.IdlenessAccountant` driven with one
    "bank" per line.
    """
    stats = _per_line_stats(physical, cycles, num_lines, breakeven, horizon)
    return _stats_arrays(stats)


def _stats_arrays(stats) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(sleep, transitions, accesses) int64 arrays from per-line stats."""
    sleep = np.array([s.sleep_cycles for s in stats], dtype=np.int64)
    transitions = np.array([s.transitions for s in stats], dtype=np.int64)
    accesses = np.array([s.accesses for s in stats], dtype=np.int64)
    return sleep, transitions, accesses
