"""The ``finegrain`` engine: per-line template behind the standard API.

This adapter lets the fine-grain simulator participate in everything
the banked engines do — ``simulate(engine="finegrain")``, ``sweep()``,
campaigns, the experiment runner and the CLI ``--engine`` flag — by
mapping an :class:`~repro.core.config.ArchitectureConfig` onto the
line-granularity template and emitting a standard
:class:`~repro.core.results.SimulationResult`:

* the *power domains* of the result are the cache **lines** (one
  :class:`~repro.power.idleness.BankIdleStats` per line, each observed
  over the full horizon), so idleness, lifetime and spread metrics read
  exactly as they do for banks — just at line granularity;
* ``config.num_banks`` is irrelevant to this template (the array is
  monolithic with per-line sleep switches) and is ignored;
* energy is derived under the ``"finegrain"`` measurement template
  (:class:`~repro.finegrain.model.LineEnergyModel`), recomputable from
  the stored per-line counters like every other metric;
* dynamic policies re-index over the **full** n-bit index (the scheme
  of [7]), not over bank bits — a different machine than the banked
  engines, which is why this engine is *not* auto-eligible: selecting
  it must be an explicit modelling decision.

``power_managed=False`` is modelled exactly like the banked engines
model it: a breakeven larger than any possible gap, so the accounting
naturally reports zero sleep.
"""

from __future__ import annotations

from repro.cache.stats import CacheStats
from repro.core.config import ArchitectureConfig
from repro.core.engine import Engine, register_engine
from repro.finegrain.model import FineGrainConfig
from repro.finegrain.sim import FineGrainSimulator


class FineGrainEngine(Engine):
    """Registry adapter for :class:`~repro.finegrain.sim.FineGrainSimulator`."""

    name = "finegrain"
    description = (
        "per-line drowsy template of [7]: lines are the power domains, "
        "re-indexing permutes the full index"
    )
    priority = 5
    auto_eligible = False
    requires = "a direct-mapped geometry (ways == 1) and no explicit update_events"
    # Different machine than fast/reference: campaign stores must not
    # alias its records with banked ones for the same config.
    family = "finegrain"

    def supports(self, config) -> bool:
        return (
            isinstance(config, ArchitectureConfig)
            and config.geometry.ways == 1
            and config.update_events is None
        )

    @staticmethod
    def _template_config(config: ArchitectureConfig) -> FineGrainConfig:
        """The fine-grain reading of an architecture config."""
        return FineGrainConfig(
            geometry=config.geometry,
            policy=config.policy,
            update_period_cycles=config.update_period_cycles,
            technology=config.technology,
            breakeven_override=config.breakeven_override,
        )

    def run(self, config, trace, lut=None, plan=None):
        from repro.core.simulator import assemble_result

        template = self._template_config(config)
        simulator = FineGrainSimulator(template, lut, plan=plan)
        breakeven = trace.horizon + 1 if not config.power_managed else None
        measurement = simulator.measure(trace, breakeven=breakeven)
        cache_stats = CacheStats(
            hits=measurement.hits,
            misses=measurement.misses,
            flushes=measurement.updates_applied,
        )
        return assemble_result(
            config,
            trace.name,
            trace.horizon,
            measurement.line_stats,
            cache_stats,
            measurement.updates_applied,
            measurement.flush_invalidations,
            lut,
            template="finegrain",
            # Engine payload: the effective per-line breakeven differs
            # from config.breakeven() (bank-level!) and from the stored
            # counters, so it travels as an extra metric.
            extra_metrics={"line_breakeven_cycles": float(measurement.breakeven)},
        )


register_engine(FineGrainEngine())
