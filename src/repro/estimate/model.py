"""The closed-form analytical model behind the ``estimate`` engine.

Inputs: one :class:`~repro.trace.stats.TraceProfile` (per trace ×
geometry × bank count) and the :class:`ArchitectureConfig` under
evaluation. Output: a :class:`SimulationResult` whose integer activity
counters are *synthesized* rather than measured, assembled through the
standard :func:`repro.core.simulator.assemble_result` funnel so energy,
lifetime and registered metrics derive exactly as they would for a
simulated run.

Modeling assumptions (each one a deliberate closed-form trade):

* **Per-bank traffic** comes from the profile's measured bank shares.
  Dynamic indexing policies (probing, scrambling) progressively
  uniformize the split as updates fire, so shares are blended toward
  ``1/M`` with weight ``U / (U + 1)`` (``U`` scheduled updates).
* **Idle gaps** come from the profile's per-bank log2-bucket gap
  histograms, with each bucket collapsed to its mean: a bucket of ``c``
  gaps totalling ``s`` cycles contributes ``c * max(0, s/c - T)`` sleep
  cycles past a breakeven of ``T``. This captures the bursty window
  structure of scheduled workloads (a few enormous gaps carry most of
  the sleepable idleness) that no mean-gap model can see. Dynamic
  policies blend each bank's histogram response toward the all-bank
  average with the same ``U / (U + 1)`` weight, and each update's
  forced wake-up charges one extra breakeven warm-up when it lands in a
  sleeping gap.
* **Hit rate** combines compulsory misses (one per distinct line
  address), a locality survival factor ``1 - 2**(-slots/stack)`` where
  ``stack`` proxies the median stack distance from the median reuse
  distance, and a flush penalty (each re-indexing update invalidates
  the resident lines).

None of this replays the trace; reprolint REPRO015 keeps it that way.
"""

from __future__ import annotations

import math

from repro.aging.lut import LifetimeLUT
from repro.cache.stats import CacheStats
from repro.core.config import ArchitectureConfig
from repro.core.results import SimulationResult
from repro.power.idleness import BankIdleStats
from repro.trace.stats import TraceProfile

#: Fidelity tag carried by everything this model produces.
ESTIMATE_FIDELITY = "estimate"


def _largest_remainder(shares: tuple[float, ...], total: int) -> list[int]:
    """Integer per-bank access counts summing exactly to ``total``."""
    raw = [share * total for share in shares]
    counts = [int(math.floor(value)) for value in raw]
    shortfall = total - sum(counts)
    order = sorted(
        range(len(shares)), key=lambda b: raw[b] - counts[b], reverse=True
    )
    for b in order[:shortfall]:
        counts[b] += 1
    return counts


def predicted_updates(config: ArchitectureConfig, horizon: int) -> int:
    """Scheduled re-indexing updates expected over ``horizon`` cycles."""
    if config.policy == "static" or horizon <= 0:
        return 0
    if config.update_events is not None:
        return sum(1 for cycle in config.update_events if cycle < horizon)
    period = config.update_period_cycles
    if period is None:
        return 0
    return max(0, (horizon - 1) // int(period))


def effective_bank_shares(
    profile: TraceProfile, config: ArchitectureConfig, updates: int
) -> tuple[float, ...]:
    """Bank shares after the indexing policy has had ``updates`` chances.

    The measured shares describe the *static* index split; dynamic
    policies redistribute toward uniform as updates fire (probing
    reaches near-uniformity after ~M updates — Section III-A3), modeled
    as a blend with weight ``updates / (updates + 1)``.
    """
    num_banks = len(profile.bank_shares)
    if config.policy == "static" or updates <= 0 or num_banks <= 1:
        return profile.bank_shares
    blend = updates / (updates + 1.0)
    uniform = 1.0 / num_banks
    return tuple(
        (1.0 - blend) * share + blend * uniform for share in profile.bank_shares
    )


def _histogram_response(
    histogram: tuple[tuple[int, int, int], ...], breakeven: float
) -> tuple[float, float, float, float]:
    """``(intervals, useful, idle, sleep)`` implied by one gap histogram.

    Each log2 bucket is collapsed to its mean gap length: all ``count``
    gaps sleep ``mean - breakeven`` cycles if the mean clears the
    breakeven, else none do. Buckets are a factor of two wide, so the
    collapse can only misjudge gaps within 2x of the breakeven — the
    window gaps that dominate sleepable idleness sit far above it.
    """
    intervals = 0.0
    idle = 0.0
    useful = 0.0
    sleep = 0.0
    for _, count, total in histogram:
        intervals += count
        idle += total
        mean = total / count
        if mean > breakeven:
            useful += count
            sleep += count * (mean - breakeven)
    return intervals, useful, idle, sleep


def synthesize_bank_stats(
    profile: TraceProfile, config: ArchitectureConfig
) -> list[BankIdleStats]:
    """Per-bank idleness counters predicted from the profile.

    Counters are clamped into feasibility (``sleep <= idle <= total``,
    ``useful <= intervals``) so the downstream energy model — which
    rejects impossible counter combinations — always accepts them.
    """
    horizon = profile.horizon
    num_banks = len(profile.bank_shares)
    updates = predicted_updates(config, horizon)
    shares = effective_bank_shares(profile, config, updates)
    counts = _largest_remainder(shares, profile.accesses)
    breakeven = float(config.breakeven()) if config.power_managed else float(horizon + 1)

    histograms = profile.bank_gap_histograms
    if len(histograms) != num_banks:
        # Profile predates the histogram statistic; treat every bank as
        # one long gap minus its busy cycles (a coarse upper bound).
        histograms = tuple(
            ((max(0, horizon - c).bit_length() - 1, 1, max(0, horizon - c)),)
            if horizon - c > 0
            else ()
            for c in counts
        )
    responses = [_histogram_response(h, breakeven) for h in histograms]
    averaged = tuple(
        sum(r[i] for r in responses) / num_banks for i in range(4)
    )
    # Dynamic policies progressively decouple a bank from its static
    # index slice, so its gap structure drifts toward the average bank's.
    blend = updates / (updates + 1.0) if config.policy != "static" and updates else 0.0

    stats: list[BankIdleStats] = []
    for b, accesses in enumerate(counts):
        own = responses[b]
        intervals, useful, idle, sleep = (
            (1.0 - blend) * own[i] + blend * averaged[i] for i in range(4)
        )
        if updates and horizon > 0 and sleep > 0:
            # Each update forces the bank awake; when it lands inside a
            # sleeping gap it splits it, costing one extra warm-up.
            interrupted = updates * min(1.0, sleep / horizon)
            sleep = max(0.0, sleep - interrupted * breakeven)
            useful += interrupted
        idle_cycles = min(int(round(idle)), max(0, horizon - accesses))
        sleep_cycles = min(int(round(sleep)), idle_cycles)
        useful_intervals = min(int(round(useful)), max(1, int(round(intervals))))
        if sleep_cycles <= 0:
            useful_intervals = 0
        stats.append(
            BankIdleStats(
                accesses=accesses,
                idle_intervals=max(useful_intervals, int(round(intervals))),
                useful_intervals=useful_intervals,
                idle_cycles=idle_cycles,
                sleep_cycles=sleep_cycles,
                transitions=useful_intervals,
                total_cycles=horizon,
            )
        )
    return stats


def predicted_cache_stats(
    profile: TraceProfile, config: ArchitectureConfig
) -> tuple[CacheStats, int, int]:
    """Predicted ``(cache stats, updates, flush invalidations)``.

    Hit model: compulsory misses (one per distinct line address), a
    locality survival factor for reuses, and a flush penalty re-fetching
    the resident set after each update. Survival uses the median reuse
    distance (in accesses) scaled by the workload's distinct-line rate
    as a stack-distance proxy: a reuse survives when the lines touched
    in between fit the available slots, modeled as
    ``1 - 2**(-slots/stack)`` (survival 1/2 when the proxy exactly
    fills the array, approaching 1 for tight loops and 0 for streams).
    """
    accesses = profile.accesses
    updates = predicted_updates(config, profile.horizon)
    if accesses == 0:
        return CacheStats(), updates, 0
    geometry = config.geometry
    line_size = geometry.line_size
    footprint_lines = max(1, profile.footprint_bytes // line_size)
    touched_sets = max(1, profile.distinct_lines)
    slots = min(geometry.num_lines, touched_sets * geometry.ways)
    reuse_median = profile.reuse_distance_median
    if math.isinf(reuse_median) or reuse_median <= 0:
        survival = 0.0
    else:
        stack = reuse_median * math.sqrt(footprint_lines / accesses)
        stack = min(float(footprint_lines), max(1.0, stack))
        survival = 1.0 - math.exp(-math.log(2.0) * slots / stack)
    compulsory = min(accesses, footprint_lines)
    reuse_misses = (accesses - compulsory) * (1.0 - survival)
    resident = min(geometry.num_lines, footprint_lines)
    flush_misses = updates * resident * survival
    misses = int(round(compulsory + reuse_misses + flush_misses))
    misses = max(compulsory, min(accesses, misses))
    invalidations = int(round(updates * resident * survival))
    return (
        CacheStats(hits=accesses - misses, misses=misses, flushes=updates),
        updates,
        invalidations,
    )


def estimate_result(
    config: ArchitectureConfig,
    profile: TraceProfile,
    lut: LifetimeLUT | None = None,
    trace_name: str = "",
) -> SimulationResult:
    """Predict the full result for ``config`` from ``profile`` alone.

    The synthesized counters go through the standard assembly funnel,
    so energy and lifetime derive from the same models a simulation
    uses; the result (and any record written from it) carries
    ``fidelity="estimate"``.
    """
    from repro.core.simulator import assemble_result
    from repro.errors import ConfigurationError

    if len(profile.bank_shares) != config.num_banks:
        raise ConfigurationError(
            f"profile was computed for {len(profile.bank_shares)} banks, "
            f"config has {config.num_banks}"
        )
    bank_stats = synthesize_bank_stats(profile, config)
    cache_stats, updates, invalidations = predicted_cache_stats(profile, config)
    return assemble_result(
        config=config,
        trace_name=trace_name,
        horizon=profile.horizon,
        bank_stats=bank_stats,
        cache_stats=cache_stats,
        updates_applied=updates,
        flush_invalidations=invalidations,
        lut=lut,
        template="banked",
        fidelity=ESTIMATE_FIDELITY,
    )
