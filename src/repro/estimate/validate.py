"""Cross-validation of the estimator against full simulation.

``repro estimate validate`` drives this harness: run the same grid at
both fidelity tiers, score the estimator's error per workload, metric
and axis, and emit a JSON-shaped report. The rank correlation is the
number that matters for guided search — pruning only needs the
estimator to *order* candidates like the simulator does, not to match
their absolute values.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.aging.lut import LifetimeLUT
from repro.analysis.planner import plan_grid
from repro.analysis.sweep import simulate_selected
from repro.core.config import ArchitectureConfig
from repro.core.plan import TracePlan
from repro.trace.trace import Trace

#: Headline metrics scored by default (result attribute names).
DEFAULT_METRICS = ("hit_rate", "energy_savings", "lifetime_years")


def _rank_correlation(predicted: list[float], measured: list[float]) -> float:
    """Spearman rank correlation (Pearson over rank vectors)."""
    if len(predicted) < 2:
        return 1.0
    ranks_p = np.argsort(np.argsort(np.asarray(predicted))).astype(float)
    ranks_m = np.argsort(np.argsort(np.asarray(measured))).astype(float)
    if np.ptp(ranks_p) == 0 or np.ptp(ranks_m) == 0:
        return 1.0 if np.array_equal(ranks_p, ranks_m) else 0.0
    return float(np.corrcoef(ranks_p, ranks_m)[0, 1])


def _metric_scores(
    predicted: list[float], measured: list[float]
) -> dict:
    errors = [abs(p - m) for p, m in zip(predicted, measured)]
    spread = max(measured) - min(measured) if measured else 0.0
    return {
        "mean_abs_error": sum(errors) / len(errors) if errors else 0.0,
        "max_abs_error": max(errors) if errors else 0.0,
        "measured_range": spread,
        "rank_correlation": _rank_correlation(predicted, measured),
        "best_point_agrees": (
            bool(
                max(range(len(measured)), key=measured.__getitem__)
                == max(range(len(predicted)), key=predicted.__getitem__)
            )
            if measured
            else True
        ),
    }


def validate_workload(
    base: ArchitectureConfig,
    trace: Trace,
    axes: dict,
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    metrics: tuple = DEFAULT_METRICS,
    parallel: int | None = None,
) -> dict:
    """Score the estimator on one workload's full grid.

    Simulates every grid point with ``engine`` and estimates it with
    the ``"estimate"`` engine, then reports per-metric error and rank
    statistics plus a per-axis breakdown (mean absolute error of the
    points sharing each axis value — which axes the model tracks well
    and which it does not).
    """
    from repro.core.engine import get_engine

    grid = plan_grid(axes)
    shared_lut = lut if lut is not None else LifetimeLUT.default()
    plan = TracePlan(trace)
    simulated = simulate_selected(
        base,
        trace,
        list(grid.names),
        list(grid.combos),
        group_ids=list(grid.group_ids) if grid.group_ids is not None else None,
        lut=shared_lut,
        engine=engine,
        parallel=parallel,
        plan=plan,
    )
    estimator = get_engine("estimate")
    estimated = [
        estimator.run(
            replace(base, **grid.parameters(i)), trace, lut=shared_lut, plan=plan
        )
        for i in range(len(grid))
    ]

    report: dict = {
        "trace": trace.name,
        "points": len(grid),
        "metrics": {},
        "axes": {},
    }
    values = {
        metric: (
            [float(getattr(r, metric)) for r in estimated],
            [float(getattr(r, metric)) for r in simulated],
        )
        for metric in metrics
    }
    for metric, (predicted, measured) in values.items():
        report["metrics"][metric] = _metric_scores(predicted, measured)
    for axis_pos, axis in enumerate(grid.names):
        groups: dict = {}
        for i, combo in enumerate(grid.combos):
            groups.setdefault(repr(combo[axis_pos]), []).append(i)
        report["axes"][axis] = {
            value: {
                metric: _metric_scores(
                    [values[metric][0][i] for i in members],
                    [values[metric][1][i] for i in members],
                )["mean_abs_error"]
                for metric in metrics
            }
            for value, members in groups.items()
        }
    return report


def validate_estimator(
    base: ArchitectureConfig,
    traces: list[Trace],
    axes: dict,
    lut: LifetimeLUT | None = None,
    engine: str = "auto",
    metrics: tuple = DEFAULT_METRICS,
    parallel: int | None = None,
) -> dict:
    """Multi-workload validation report (the CLI's JSON payload)."""
    workloads = [
        validate_workload(
            base, trace, axes, lut=lut, engine=engine, metrics=metrics,
            parallel=parallel,
        )
        for trace in traces
    ]
    overall = {}
    for metric in metrics:
        per_metric = [w["metrics"][metric] for w in workloads]
        overall[metric] = {
            "mean_abs_error": (
                sum(s["mean_abs_error"] for s in per_metric) / len(per_metric)
                if per_metric
                else 0.0
            ),
            "worst_rank_correlation": (
                min(s["rank_correlation"] for s in per_metric)
                if per_metric
                else 1.0
            ),
        }
    return {
        "points_per_workload": workloads[0]["points"] if workloads else 0,
        "workloads": workloads,
        "overall": overall,
    }
