"""Registry adapter: the analytical model as an ``"estimate"`` engine.

Registered like any other engine, so ``--engine estimate`` works on
every CLI entry point and strategies reach it through the registry —
but with ``fidelity = "estimate"`` and ``auto_eligible = False``:
``engine="auto"`` must never silently substitute a prediction for a
simulation, and estimated records key separately in every store.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.engine import Engine, register_engine
from repro.estimate.model import estimate_result
from repro.trace.stats import TraceProfile, profile_trace


class EstimateEngine(Engine):
    """Closed-form estimator behind the standard engine interface.

    ``run`` profiles the trace (a few array passes) and evaluates the
    analytical model — no replay. When a shared
    :class:`~repro.core.plan.TracePlan` is passed, the profile is
    memoized in the plan keyed by (geometry, bank count), so a whole
    grid over one trace pays for each distinct profile once.
    """

    name = "estimate"
    description = "closed-form analytical estimator (no trace replay)"
    priority = -100
    auto_eligible = False
    requires = "a banked config whose set array divides into its banks"
    family = "banked"
    fidelity = "estimate"

    def supports(self, config) -> bool:
        return (
            isinstance(config, ArchitectureConfig)
            and config.geometry.num_sets % config.num_banks == 0
        )

    def run(self, config, trace, lut=None, plan=None):
        profile = self._profile(trace, config.geometry, config.num_banks, plan)
        return estimate_result(config, profile, lut=lut, trace_name=trace.name)

    @staticmethod
    def _profile(trace, geometry: CacheGeometry, num_banks: int, plan) -> TraceProfile:
        if plan is None or not plan.matches(trace):
            return profile_trace(trace, geometry, num_banks)
        key = (
            "estimate-profile",
            geometry.size_bytes,
            geometry.line_size,
            geometry.ways,
            num_banks,
        )
        return plan.cached(
            key, lambda: profile_trace(trace, geometry, num_banks)
        )


register_engine(EstimateEngine())
