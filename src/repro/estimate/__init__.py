"""The ``estimate`` fidelity tier: closed-form analytical prediction.

Where the simulation engines replay a trace access by access, this
package predicts the same headline metrics — hit rate, per-bank
idleness, energy, lifetime — from the cheap summary statistics of
:func:`repro.trace.stats.profile_trace` alone. One profile costs a few
array passes; after that every grid point is arithmetic, which is what
makes estimator-guided search (:mod:`repro.analysis.planner`) able to
screen hundreds of configurations before paying for a single
simulation.

Estimated results flow through the exact same assembly funnel as
simulated ones (:func:`repro.core.simulator.assemble_result`), so the
energy model, lifetime LUT and every registered metric are applied
identically — only the integer activity counters are synthesized
instead of measured. Results and records carry ``fidelity="estimate"``
and are keyed separately in every store (see
:func:`repro.campaign.codec.config_result_hash`).

The package is deliberately isolated from the replay machinery:
reprolint REPRO015 forbids it from importing ``core/fastsim``,
``core/streamsim`` or ``kernels/`` internals.
"""

from repro.estimate.engine import EstimateEngine
from repro.estimate.model import estimate_result, synthesize_bank_stats
from repro.estimate.validate import validate_estimator

__all__ = [
    "EstimateEngine",
    "estimate_result",
    "synthesize_bank_stats",
    "validate_estimator",
]
