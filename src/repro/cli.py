"""Command-line interface: ``python -m repro <command>`` or ``repro``.

Commands reproduce the paper's artifacts from the terminal::

    repro table1            # Table I  (idleness distribution)
    repro table2            # Table II (energy + lifetime vs cache size)
    repro table3            # Table III (vs line size)
    repro table4            # Table IV (vs number of banks)
    repro headline          # Sections I/V summary claims
    repro cell              # aging curve of the calibrated 6T cell
    repro arch              # structural summary / overhead report
    repro policies          # probing vs scrambling uniformity convergence
    repro profile <bench>   # characterize a synthetic workload
    repro engines           # registered simulation engines
    repro metrics           # registered derived metrics
    repro sweep             # design-space sweep on one workload
    repro campaign run s.json --dir DIR     # resumable spec-file campaign
    repro campaign status s.json --dir DIR  # store coverage of a spec
    repro campaign show PATH [--metric X]   # render a campaign dir or results file
    repro campaign migrate DIR              # flat store -> sharded layout + index
    repro campaign serve DIR --port N       # HTTP/JSON front-end over a store
    repro campaign submit s.json --url U    # send a spec to a running service

``--quick`` runs a reduced benchmark set with shorter traces — useful
for smoke checks; the full run takes a couple of minutes.

``repro sweep`` exercises the shared trace-plan sweep engine: one
decode/sort of the trace feeds every grid point, a breakeven axis is
batched into single gap computations, and ``--parallel N`` fans chunks
out over processes without re-pickling the trace per chunk. ``--save``
persists the results as a (v2, exactly resimulable) JSON file.
``--chunk-cycles N`` runs the whole grid out-of-core: the workload is
generated and simulated in N-cycle chunks in a single pass, with peak
memory bounded by the chunk size instead of the trace length — and
bit-identical results.

``repro campaign`` takes a declarative JSON spec file (see
:class:`repro.campaign.CampaignSpec`); running the same spec twice
against the same ``--dir`` simulates nothing the second time, and
widening an axis simulates only the new points. ``run --workers N``
drains through the claim-based work queue, so several invocations (or
hosts sharing the directory) cooperate without double-simulating;
``serve``/``submit`` put the same machinery behind a stdlib HTTP/JSON
service (see :mod:`repro.campaign.service`).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.engine import engine_names
from repro.experiments.compare import (
    compare_table1,
    compare_table2,
    compare_table3,
    compare_table4,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.suite import ExperimentSettings
from repro.experiments.tables import headline, table1, table2, table3, table4

_TABLES = {
    "table1": (table1, compare_table1),
    "table2": (table2, compare_table2),
    "table3": (table3, compare_table3),
    "table4": (table4, compare_table4),
}


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    settings = ExperimentSettings(master_seed=args.seed, engine=args.engine)
    if args.quick:
        settings = settings.quick()
    return ExperimentRunner(settings=settings)


def _cmd_table(name: str, args: argparse.Namespace) -> int:
    build, compare = _TABLES[name]
    runner = _make_runner(args)
    result = build(runner)
    print(result.render())
    if args.compare:
        from repro.experiments.compare import render_comparison

        cells, summary = compare(result)
        print()
        print(render_comparison(cells, summary, f"{name} vs paper"))
    else:
        cells, summary = compare(result)
        print(
            f"\nvs paper: cells={summary['count']} "
            f"mean|Δ|={summary['mean_abs_delta']:.2f} "
            f"max|Δ|={summary['max_abs_delta']:.2f}"
        )
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    print(headline(runner).render())
    return 0


def _cmd_cell(args: argparse.Namespace) -> int:
    from repro.aging.cell import CharacterizationFramework

    framework = CharacterizationFramework()
    print(f"fresh read SNM        : {framework.snm_fresh * 1000:.1f} mV")
    print(f"failure threshold     : {framework.snm_failure_threshold * 1000:.1f} mV (-20%)")
    print(f"drowsy stress factor  : {framework.nbti.sleep_stress_factor:.3f}")
    print(f"calibrated lifetime   : {framework.lifetime_years(0.5, 0.0):.2f} years")
    curve = framework.aging_curve(p0=args.p0, psleep=args.psleep, points=13)
    print(f"\nSNM(t) at p0={args.p0}, Psleep={args.psleep}:")
    for t, snm in zip(curve.times_years, curve.snm_volts):
        print(f"  t={t:5.1f}y  SNM={snm * 1000:6.1f} mV")
    print(f"lifetime: {curve.lifetime_years:.2f} years")
    return 0


def _cmd_arch(args: argparse.Namespace) -> int:
    from repro.cache.geometry import CacheGeometry
    from repro.core.architecture import summarize
    from repro.core.config import ArchitectureConfig

    config = ArchitectureConfig(
        geometry=CacheGeometry(args.size * 1024, args.line_size),
        num_banks=args.banks,
        policy="probing",
        update_period_cycles=1,
    )
    summary = summarize(config)
    print(f"{args.size}kB cache, {args.line_size}B lines, M={args.banks}:")
    print(f"  index bits (n)        : {summary.index_bits}")
    print(f"  bank bits (p)         : {summary.bank_bits}")
    print(f"  lines per bank        : {summary.lines_per_bank}")
    print(f"  tag bits per line     : {summary.tag_bits_per_line}")
    print(f"  breakeven time        : {summary.breakeven_cycles} cycles")
    print(f"  idle counter width    : {summary.counter_width_bits} bits (paper: 5-6)")
    print(f"  wiring energy overhead: {summary.wiring_energy_overhead:.1%}")

    from repro.hw.overhead import estimate_overhead

    overhead = estimate_overhead(config)
    print("added hardware (gate-equivalents):")
    print(f"  1-hot encoder         : {overhead.encoder_ge:.0f} GE")
    print(f"  remap f()             : {overhead.remap_ge:.0f} GE")
    print(f"  Block Control counters: {overhead.control_ge:.0f} GE")
    print(f"  supply selector       : {overhead.selector_ge:.0f} GE")
    print(f"  total ~{overhead.total_ge:.0f} GE (~{overhead.area_um2:.0f} um2 at 45nm), "
          f"access-path depth {overhead.critical_path_gates} gates")
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from repro.core.engine import registered_engines, supports_streaming

    print("registered simulation engines (select with --engine):")
    print(f"  {'auto':<12} highest-priority auto-eligible engine "
          "supporting the configuration")
    for engine in registered_engines():
        flags = []
        if not getattr(engine, "auto_eligible", True):
            flags.append("explicit-only")
        if supports_streaming(engine):
            flags.append("streaming")
        family = getattr(engine, "family", "banked")
        if family != "banked":
            flags.append(f"family={family}")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        print(f"  {engine.name:<12} {engine.description}{suffix}")
        requires = getattr(engine, "requires", "")
        if requires:
            print(f"  {'':<12} requires {requires}")
    from repro.kernels import dispatch

    compiled = dispatch.compiled_backend()
    print("kernel backends (compiled engine dispatch):")
    for name, reason in dispatch.backend_status().items():
        if reason is None:
            marker = " (selected)" if name == (compiled or "numpy") else ""
            print(f"  {name:<12} available{marker}")
        else:
            print(f"  {name:<12} unavailable: {reason}")
    if compiled is None:
        print("  no compiled backend loadable; the 'compiled' engine "
              "falls back to numpy")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.core.metrics import registered_metrics

    print("registered derived metrics (values recomputable from stored "
          "counters; select values with campaign show --metric):")
    for metric in registered_metrics():
        mode = "eager" if metric.eager else "lazy"
        print(f"  {metric.name:<18} [{mode}] {metric.description}")
        print(f"  {'':<18} values: {', '.join(metric.provides)}")
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from repro.indexing.analysis import mapping_histogram, uniformity_error
    from repro.indexing.policies import make_policy

    print(f"uniformity error vs number of updates (M = {args.banks}):")
    print(f"{'updates':>8} {'probing':>10} {'scrambling':>11}")
    for updates in (0, args.banks - 1, args.banks, 4 * args.banks, 16 * args.banks, 64 * args.banks):
        errors = []
        for name in ("probing", "scrambling"):
            policy = make_policy(name, args.banks)
            errors.append(uniformity_error(mapping_histogram(policy, updates)))
        print(f"{updates:>8} {errors[0]:>10.3f} {errors[1]:>11.3f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.sweep import sweep
    from repro.cache.geometry import CacheGeometry
    from repro.core.config import ArchitectureConfig
    from repro.trace.generator import WorkloadGenerator
    from repro.trace.mediabench import profile_for

    if args.updates < 1:
        print("error: --updates must be >= 1", file=sys.stderr)
        return 2
    try:
        bank_axis = [int(v) for v in args.banks.split(",")]
        breakeven_axis = (
            [int(v) for v in args.breakevens.split(",")] if args.breakevens else None
        )
    except ValueError:
        print(
            "error: --banks and --breakevens take comma-separated integers",
            file=sys.stderr,
        )
        return 2
    if args.chunk_cycles < 0:
        print(
            "error: --chunk-cycles must be >= 0 (0 = in-memory)",
            file=sys.stderr,
        )
        return 2
    geometry = CacheGeometry(args.size * 1024, args.line_size)
    generator = WorkloadGenerator(
        geometry, num_windows=args.windows, master_seed=args.seed
    )
    profile = profile_for(args.benchmark)
    horizon = generator.horizon
    if args.updates >= horizon:
        print(
            f"error: --updates {args.updates} exceeds the trace horizon "
            f"({horizon:,} cycles); use fewer updates or more --windows",
            file=sys.stderr,
        )
        return 2
    axes: dict[str, list] = {
        "num_banks": bank_axis,
        "policy": args.policies.split(","),
    }
    if breakeven_axis is not None:
        axes["breakeven_override"] = breakeven_axis
    from repro.errors import ReproError

    start = time.perf_counter()
    try:
        base = ArchitectureConfig(
            geometry,
            num_banks=axes["num_banks"][0],
            policy="static",
            update_period_cycles=horizon // args.updates,
        )
        if args.chunk_cycles:
            # Out-of-core: the trace is generated, decoded and
            # simulated chunk by chunk in one pass; it is never
            # resident in full. Results are bit-identical to the
            # in-memory path. A factory (not an opened stream) goes
            # in so --parallel can shard the pass, each worker
            # re-opening its own stream.
            import functools

            from repro.analysis.sweep import stream_sweep

            stream = functools.partial(
                generator.stream, profile, args.chunk_cycles
            )
            result = stream_sweep(
                base, stream, axes, engine=args.engine, parallel=args.parallel
            )
        else:
            trace = generator.generate(profile)
            result = sweep(
                base, trace, axes, engine=args.engine, parallel=args.parallel
            )
    except ReproError as error:
        # e.g. --banks 1 with a dynamic policy axis, or a non-power-of-two
        # bank count: surface the validation message, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    seconds = time.perf_counter() - start

    first = result.points[0].result
    accesses = first.cache_stats.hits + first.cache_stats.misses
    print(
        f"{args.benchmark}: {accesses:,} accesses, "
        f"{horizon:,} cycles, {len(result)} points"
        + (f" [streamed, {args.chunk_cycles:,}-cycle chunks]"
           if args.chunk_cycles else "")
    )
    print(f"{'banks':>5} {'policy':>11} {'breakeven':>9} "
          f"{'hit-rate':>8} {'Esav':>7} {'LT':>7}")
    for point in result:
        breakeven = point.parameters.get("breakeven_override", "auto")
        r = point.result
        print(
            f"{point.parameters['num_banks']:>5} "
            f"{point.parameters['policy']:>11} "
            f"{str(breakeven):>9} "
            f"{r.hit_rate:>8.2%} {r.energy_savings:>7.2%} "
            f"{r.lifetime_years:>6.2f}y"
        )
    best = result.best("lifetime_years")
    print(f"best lifetime: {best.value('lifetime_years'):.2f}y at {best.parameters}")
    print(f"swept {len(result)} points in {seconds:.2f}s "
          f"({len(result) / seconds:.1f} points/s)")
    if args.save:
        from repro.core.serialize import save_results

        save_results([point.result for point in result], args.save)
        print(f"saved {len(result)} results to {args.save}")
    return 0


def _format_metric_cell(value) -> str:
    """18-wide cell for a metric value (payloads may be non-numeric)."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return f"{value:>18.6g}"
    return f"{str(value):>18}"


def _render_records(records, metrics: tuple[str, ...] = ()) -> None:
    """Shared results table for ``campaign run`` and ``campaign show``.

    ``metrics`` adds one column per named metric *value*, recomputed
    from each record's stored counters (so metrics registered after the
    store was written still render). v1 records, whose counters are
    incomplete, show ``-``.
    """
    from repro.core.serialize import SerializationError

    header = (f"{'trace':>12} {'banks':>5} {'policy':>11} {'hit-rate':>8} "
              f"{'Esav':>7} {'LT':>7}")
    for name in metrics:
        header += f" {name:>18}"
    print(header)
    for record in records:
        row = (
            f"{record.trace_name:>12} "
            f"{record.config.get('num_banks', '?'):>5} "
            f"{record.config.get('policy', '?'):>11} "
            f"{record.hit_rate:>8.2%} {record.energy_savings:>7.2%} "
            f"{record.lifetime_years:>6.2f}y"
        )
        if metrics:
            try:
                # One rebuild per record, however many columns.
                result = record.to_result()
            except SerializationError:
                result = None  # v1: counters incomplete
            for name in metrics:
                if result is None:
                    row += f" {'-':>18}"
                else:
                    row += f" {_format_metric_cell(result.metric(name))}"
        print(row)


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec, CampaignStore, campaign_status, run_campaign
    from repro.core.serialize import load_results
    from repro.errors import ReproError

    try:
        if args.campaign_command == "show":
            import os

            path = args.path
            if os.path.isdir(path):
                records = CampaignStore(path).records()
                print(f"{path}: {len(records)} stored records")
            else:
                records = load_results(path)
                print(f"{path}: {len(records)} saved results")
            _render_records(records, metrics=tuple(args.metric))
            return 0

        if args.campaign_command == "migrate":
            store = CampaignStore(args.dir)
            moved = store.migrate()
            indexed = store.rebuild_index()
            print(f"{args.dir}: migrated {moved} records, indexed {indexed}")
            return 0

        if args.campaign_command == "serve":
            from repro.campaign.service.server import serve

            serve(
                args.dir,
                host=args.host,
                port=args.port,
                workers=args.workers,
                parallel=args.parallel,
            )
            return 0

        if args.campaign_command == "submit":
            import json

            from repro.campaign.service.client import ServiceClient

            spec = CampaignSpec.load(args.spec)
            client = ServiceClient(args.url)
            response = client.submit(spec.to_dict())
            spec_hash = response["spec_hash"]
            if args.wait:
                entry = client.wait_drained(spec_hash, timeout=args.timeout)
                print(json.dumps(entry, indent=2, sort_keys=True))
            else:
                print(f"submitted {spec.name or args.spec} (spec {spec_hash[:12]})")
            return 0

        spec = CampaignSpec.load(args.spec)
        if args.campaign_command == "status":
            import json
            import os

            from repro.campaign.run import status_payload

            store = CampaignStore(args.dir) if args.dir else CampaignStore()
            if args.json:
                print(json.dumps(status_payload(spec, store), indent=2, sort_keys=True))
                return 0
            status = campaign_status(spec, store)
            note = ""
            if args.dir and not os.path.isdir(args.dir):
                note = f" [directory {args.dir} does not exist yet]"
            print(
                f"{spec.name or args.spec}: {status.done}/{status.total} points "
                f"done, {status.missing} missing "
                f"(spec {spec.spec_hash()[:12]}){note}"
            )
            return 0

        # campaign run
        result = run_campaign(
            spec,
            directory=args.dir or None,
            parallel=args.parallel,
            workers=args.workers,
            search=args.strategy,
        )
        estimated = f", estimated {result.estimated}" if result.estimated else ""
        print(
            f"{spec.name or args.spec}: {len(result)} points, "
            f"simulated {result.simulated}, reused {result.reused}{estimated}"
            + (f" (store: {args.dir})" if args.dir else " (in memory)")
        )
        _render_records(result.records)
        return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace stats``: characterize a benchmark or a trace file."""
    import json
    import os

    from repro.cache.geometry import CacheGeometry
    from repro.errors import ReproError
    from repro.trace.stats import describe_profile, profile_trace

    try:
        geometry = CacheGeometry(args.size * 1024, args.line_size)
        if os.path.isfile(args.workload):
            from repro.trace.io import load_trace

            trace = load_trace(args.workload)
        else:
            from repro.trace.generator import WorkloadGenerator
            from repro.trace.mediabench import profile_for

            kwargs = {} if args.windows is None else {"num_windows": args.windows}
            generator = WorkloadGenerator(geometry, **kwargs)
            trace = generator.generate(profile_for(args.workload))
        profile = profile_trace(trace, geometry, num_banks=args.banks)
        if args.json:
            payload = {
                "workload": args.workload,
                "size_bytes": geometry.size_bytes,
                "line_size": geometry.line_size,
                "num_banks": args.banks,
                "accesses": profile.accesses,
                "horizon": profile.horizon,
                "access_density": profile.access_density,
                "distinct_lines": profile.distinct_lines,
                "footprint_bytes": profile.footprint_bytes,
                "bank_shares": list(profile.bank_shares),
                "gap_percentiles": {
                    str(q): v for q, v in profile.gap_percentiles.items()
                },
                "reuse_distance_median": (
                    None
                    if profile.reuse_distance_median == float("inf")
                    else profile.reuse_distance_median
                ),
                "bank_gap_histograms": [
                    [list(triple) for triple in bank]
                    for bank in profile.bank_gap_histograms
                ],
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(
                f"{args.workload} on a {args.size}kB cache "
                f"({args.banks} banks):"
            )
            print(describe_profile(profile))
        return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_estimate(args: argparse.Namespace) -> int:
    """``repro estimate validate``: score the estimator vs simulation."""
    import json

    from repro.cache.geometry import CacheGeometry
    from repro.core.config import ArchitectureConfig
    from repro.errors import ReproError
    from repro.estimate.validate import validate_estimator
    from repro.trace.generator import WorkloadGenerator
    from repro.trace.mediabench import profile_for

    try:
        geometry = CacheGeometry(args.size * 1024, args.line_size)
        base = ArchitectureConfig(geometry=geometry, num_banks=4, policy="static")
        axes: dict = {}
        if args.banks:
            axes["num_banks"] = [int(v) for v in args.banks.split(",")]
        if args.policies:
            axes["policy"] = args.policies.split(",")
        if args.breakevens:
            axes["breakeven_override"] = [
                None if v == "none" else int(v) for v in args.breakevens.split(",")
            ]
        if not axes:
            axes["num_banks"] = [2, 4, 8]
        generator = WorkloadGenerator(geometry, num_windows=args.windows)
        traces = [
            generator.generate(profile_for(name))
            for name in args.benchmarks.split(",")
        ]
        report = validate_estimator(
            base, traces, axes, engine=args.engine, parallel=args.parallel
        )
        rendered = json.dumps(report, indent=2, sort_keys=True)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
            print(f"wrote {args.output}")
        if args.json or not args.output:
            print(rendered)
        return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.cache.geometry import CacheGeometry
    from repro.trace.generator import WorkloadGenerator
    from repro.trace.mediabench import profile_for
    from repro.trace.stats import describe_profile, profile_trace

    geometry = CacheGeometry(args.size * 1024, 16)
    trace = WorkloadGenerator(geometry).generate(profile_for(args.benchmark))
    print(f"{args.benchmark} on a {args.size}kB cache:")
    print(describe_profile(profile_trace(trace, geometry)))
    return 0


def _cmd_lint(args) -> int:
    """``repro lint``: forward to the reprolint CLI.

    reprolint is a sibling package (``tools/reprolint``), installed by
    ``pip install -e .``; an uninstalled source checkout finds it via
    the repo-relative ``tools`` directory so ``repro lint`` works in
    both layouts.
    """
    try:
        from reprolint.cli import main as lint_main
    except ImportError:
        import os

        tools_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
            "tools",
        )
        if not os.path.isdir(os.path.join(tools_dir, "reprolint")):
            print(
                "repro lint: the reprolint package is not importable "
                "(install with `pip install -e .` or run from a source checkout)",
                file=sys.stderr,
            )
            return 2
        sys.path.insert(0, tools_dir)
        from reprolint.cli import main as lint_main

    lint_args = list(args.lint_args)
    if lint_args and lint_args[0] == "--":
        lint_args = lint_args[1:]
    return lint_main(lint_args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Partitioned Cache Architectures for "
        "Reduced NBTI-Induced Aging' (DATE 2011)",
    )
    parser.add_argument("--seed", type=int, default=2011, help="workload master seed")
    parser.add_argument("--quick", action="store_true", help="reduced benchmark set")
    parser.add_argument(
        "--engine",
        choices=list(engine_names()),
        default="auto",
        help="simulation engine (auto picks the fastest supporting one; "
        "see `repro engines`)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _TABLES:
        p = sub.add_parser(name, help=f"reproduce the paper's {name}")
        p.add_argument("--compare", action="store_true", help="print per-cell deltas")

    sub.add_parser("headline", help="Sections I/V summary claims")

    p_cell = sub.add_parser("cell", help="6T cell aging curve")
    p_cell.add_argument("--p0", type=float, default=0.5, help="probability of storing 0")
    p_cell.add_argument("--psleep", type=float, default=0.0, help="sleep fraction")

    p_arch = sub.add_parser("arch", help="architecture overhead summary")
    p_arch.add_argument("--size", type=int, default=16, help="cache size in kB")
    p_arch.add_argument("--line-size", type=int, default=16, help="line size in bytes")
    p_arch.add_argument("--banks", type=int, default=4, help="number of banks M")

    p_pol = sub.add_parser("policies", help="probing vs scrambling uniformity")
    p_pol.add_argument("--banks", type=int, default=4, help="number of banks M")

    sub.add_parser("engines", help="list registered simulation engines")
    sub.add_parser("metrics", help="list registered derived metrics")

    p_lint = sub.add_parser(
        "lint",
        help="run reprolint, the repo's AST-based invariant linter",
        description="Forwards to `python -m reprolint`; see "
        "`repro lint -- --list-rules` for the rule catalogue.",
    )
    p_lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        metavar="...",
        help="arguments passed through to reprolint (prefix with --)",
    )

    p_prof = sub.add_parser("profile", help="characterize a benchmark workload")
    p_prof.add_argument("benchmark", help="benchmark name (e.g. adpcm.dec)")
    p_prof.add_argument("--size", type=int, default=16, help="cache size in kB")

    p_trace = sub.add_parser(
        "trace", help="trace utilities (statistics used by the estimator)"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tstats = trace_sub.add_parser(
        "stats",
        help="profile a workload: shares, gaps, footprint, reuse distance",
    )
    p_tstats.add_argument(
        "workload", help="benchmark name (e.g. dijkstra) or a trace file path"
    )
    p_tstats.add_argument("--size", type=int, default=16, help="cache size in kB")
    p_tstats.add_argument("--line-size", type=int, default=16, help="line size in bytes")
    p_tstats.add_argument("--banks", type=int, default=4, help="bank split M")
    p_tstats.add_argument(
        "--windows",
        type=int,
        default=None,
        help="schedule windows for a generated benchmark workload "
        "(ignored for trace files; default: the generator's full run)",
    )
    p_tstats.add_argument(
        "--json",
        action="store_true",
        help="machine-readable profile (includes per-bank gap histograms)",
    )

    p_est = sub.add_parser(
        "estimate", help="the closed-form analytical fidelity tier"
    )
    est_sub = p_est.add_subparsers(dest="estimate_command", required=True)
    p_eval = est_sub.add_parser(
        "validate",
        help="score the estimator against full simulation over a grid",
    )
    p_eval.add_argument(
        "--benchmarks",
        default="dijkstra,susan,adpcm.dec",
        help="comma-separated benchmark workloads",
    )
    p_eval.add_argument("--size", type=int, default=16, help="cache size in kB")
    p_eval.add_argument("--line-size", type=int, default=16, help="line size in bytes")
    p_eval.add_argument(
        "--banks", default="2,4,8", help="comma-separated num_banks axis"
    )
    p_eval.add_argument(
        "--policies", default="", help="comma-separated policy axis"
    )
    p_eval.add_argument(
        "--breakevens",
        default="",
        help="comma-separated breakeven_override axis ('none' for computed)",
    )
    p_eval.add_argument(
        "--windows", type=int, default=300, help="workload schedule windows"
    )
    p_eval.add_argument(
        "--parallel", type=int, default=None, help="worker processes for the grid"
    )
    p_eval.add_argument(
        "--json", action="store_true", help="print the JSON report (default unless --output)"
    )
    p_eval.add_argument(
        "--output", default="", help="also write the JSON report to this file"
    )

    p_sweep = sub.add_parser(
        "sweep", help="design-space sweep (shared trace-plan engine)"
    )
    p_sweep.add_argument(
        "--benchmark", default="dijkstra", help="workload profile to sweep on"
    )
    p_sweep.add_argument("--size", type=int, default=16, help="cache size in kB")
    p_sweep.add_argument("--line-size", type=int, default=16, help="line size in bytes")
    p_sweep.add_argument(
        "--banks", default="2,4,8", help="comma-separated num_banks axis"
    )
    p_sweep.add_argument(
        "--policies", default="static,probing", help="comma-separated policy axis"
    )
    p_sweep.add_argument(
        "--breakevens",
        default="",
        help="comma-separated breakeven_override axis (empty: computed breakeven)",
    )
    p_sweep.add_argument(
        "--updates", type=int, default=16, help="re-indexing updates over the trace"
    )
    p_sweep.add_argument(
        "--windows", type=int, default=200, help="workload schedule windows"
    )
    p_sweep.add_argument(
        "--parallel", type=int, default=None, help="worker processes for the grid"
    )
    p_sweep.add_argument(
        "--chunk-cycles",
        type=int,
        default=0,
        help="stream the workload out-of-core in windows of this many "
        "cycles (one pass for the whole grid, peak memory bounded by "
        "the chunk; --parallel shards the pass by set/bank partition; "
        "0 = in-memory)",
    )
    p_sweep.add_argument(
        "--save",
        default="",
        help="write the sweep results to this JSON file (save_results format)",
    )

    p_camp = sub.add_parser(
        "campaign", help="declarative, resumable campaigns from JSON spec files"
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    p_run = camp_sub.add_parser("run", help="run a spec; skip points already stored")
    p_run.add_argument("spec", help="campaign spec JSON file")
    p_run.add_argument(
        "--dir", default="", help="campaign directory (content-addressed store)"
    )
    p_run.add_argument(
        "--parallel", type=int, default=None, help="worker processes per trace"
    )
    p_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="claim-loop worker processes (work-queue drain: leased claims, "
        "safe across concurrent invocations sharing --dir; requires --dir)",
    )
    from repro.analysis.planner import strategy_names

    p_run.add_argument(
        "--strategy",
        choices=list(strategy_names()),
        default=None,
        help="search strategy override: estimator-guided strategies "
        "estimate the whole grid, then simulate only the survivors "
        "(default: the spec's own 'search' block, else exhaustive)",
    )

    p_status = camp_sub.add_parser("status", help="store coverage of a spec")
    p_status.add_argument("spec", help="campaign spec JSON file")
    p_status.add_argument("--dir", default="", help="campaign directory")
    p_status.add_argument(
        "--json",
        action="store_true",
        help="machine-readable status (same payload the service's "
        "GET /status serves per spec)",
    )

    p_migrate = camp_sub.add_parser(
        "migrate",
        help="rewrite a flat (pre-shard) store into the sharded layout "
        "in place (atomic per record, resumable) and rebuild index.db",
    )
    p_migrate.add_argument("dir", help="campaign directory")

    p_serve = camp_sub.add_parser(
        "serve", help="expose a campaign directory over HTTP/JSON"
    )
    p_serve.add_argument("dir", help="campaign directory")
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8437, help="bind port")
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="claim-loop worker processes draining submitted specs",
    )
    p_serve.add_argument(
        "--parallel", type=int, default=None, help="worker processes per trace"
    )

    p_submit = camp_sub.add_parser(
        "submit", help="submit a spec file to a running campaign service"
    )
    p_submit.add_argument("spec", help="campaign spec JSON file")
    p_submit.add_argument(
        "--url", default="http://127.0.0.1:8437", help="service base URL"
    )
    p_submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the service reports the spec fully drained",
    )
    p_submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="--wait deadline in seconds",
    )

    p_show = camp_sub.add_parser(
        "show", help="render a campaign directory or a saved results file"
    )
    p_show.add_argument("path", help="campaign --dir or a save_results JSON file")
    p_show.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="VALUE",
        help="extra column: a metric value recomputed from the stored "
        "counters (repeatable; see `repro metrics`)",
    )

    args = parser.parse_args(argv)
    if args.command in _TABLES:
        return _cmd_table(args.command, args)
    if args.command == "headline":
        return _cmd_headline(args)
    if args.command == "cell":
        return _cmd_cell(args)
    if args.command == "arch":
        return _cmd_arch(args)
    if args.command == "policies":
        return _cmd_policies(args)
    if args.command == "engines":
        return _cmd_engines(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "estimate":
        return _cmd_estimate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
