"""Baseline handling: grandfathered findings that do not fail the build.

A baseline entry matches on ``(rule, path, message)`` — not the line
number, so unrelated edits never resurrect a grandfathered finding —
and entries are consumed as a multiset: two identical violations need
two baseline entries, and fixing one of them shrinks the debt visibly.

The repo ships an **empty** baseline (``.reprolint-baseline.json``);
the mechanism exists so a future rule can land before its backlog is
burned down, without turning the gate off.
"""

from __future__ import annotations

import json
import os
from collections import Counter

from reprolint.framework import Finding, LintError

BASELINE_VERSION = 1

#: Used when no ``--baseline`` flag is given and this file exists in
#: the current directory (how CI and ``repro lint`` pick up the repo's
#: committed baseline with zero configuration).
DEFAULT_BASELINE = ".reprolint-baseline.json"


def load_baseline(path: str) -> list[dict[str, object]]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except ValueError as exc:
            raise LintError(f"{path}: not a valid baseline file ({exc})") from None
    if not isinstance(payload, dict) or "findings" not in payload:
        raise LintError(f"{path}: not a valid baseline file (no findings key)")
    findings = payload["findings"]
    if not isinstance(findings, list):
        raise LintError(f"{path}: baseline findings must be a list")
    return findings


def save_baseline(path: str, findings: list[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, stable bytes)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


def apply_baseline(
    findings: list[Finding], baseline_entries: list[dict[str, object]]
) -> tuple[list[Finding], int]:
    """Split findings into (new, suppressed-count) against the baseline."""
    budget: Counter[tuple[str, str, str]] = Counter()
    for entry in baseline_entries:
        budget[(str(entry.get("rule")), str(entry.get("path")), str(entry.get("message")))] += 1
    fresh: list[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding.baseline_key
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
