"""Built-in reprolint rules: the repo's review-hardened invariants.

Each rule encodes an invariant that was established (usually after a
real bug) in an earlier PR and that nothing else enforces mechanically.
The rule docstrings name the motivating incident; README's "Static
analysis & invariants" section is the user-facing index.

Rules are deliberately scoped to the modules where their invariant
lives — REPRO001 does not care about float arrays in the energy model,
only in the counter kernels that must stay integer-exact.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from reprolint.dataflow import assigned_names
from reprolint.framework import Finding, Module, Rule, register_rule
from reprolint.project import ClassInfo, FunctionInfo, Project

#: Engine names the registry owns. String-comparing against these
#: outside the registry module is exactly the dispatch style PR 4
#: removed (REPRO004).
ENGINE_NAMES = frozenset({"fast", "reference", "finegrain", "compiled", "auto"})

#: numpy float dtype spellings REPRO001 refuses in counter kernels.
_FLOAT_DTYPE_ATTRS = frozenset(
    {"float16", "float32", "float64", "float128", "double", "single", "half"}
)

#: ``np.random`` attributes that *are* seed-disciplined constructors;
#: everything else on the module is the process-global legacy RNG.
_SEEDED_RANDOM_API = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: stdlib ``random`` module functions that draw from the global RNG.
_STDLIB_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "seed",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
    }
)

#: Builtin exception types library code must not raise directly —
#: callers contract on ``repro.errors.ReproError`` (REPRO006).
#: TypeError/KeyError/IndexError/NotImplementedError stay allowed:
#: they are Python *protocol* errors (wrong argument type, mapping
#: lookup miss, abstract method), not library semantics.
_FORBIDDEN_RAISES = frozenset(
    {"Exception", "BaseException", "ValueError", "RuntimeError", "OSError", "IOError"}
)

#: Calls that produce *fresh* state — the RHS shapes REPRO008 treats as
#: "re-initialization" when assigned to a carry attribute per chunk.
_FRESH_STATE_CALLS = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "array",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
        "arange",
        "dict",
        "list",
        "set",
    }
)


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, ``""`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(node: ast.Call) -> str:
    return dotted_name(node.func)


def keyword(node: ast.Call, name: str) -> ast.keyword | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw
    return None


def has_double_star(node: ast.Call) -> bool:
    return any(kw.arg is None for kw in node.keywords)


def _is_float_dtype_value(node: ast.expr) -> bool:
    """Whether a ``dtype=`` value names a float dtype."""
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Attribute):
        return node.attr in _FLOAT_DTYPE_ATTRS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith(("float", "f8", "f4", "f2", "<f", ">f"))
    return False


def _is_set_expr(node: ast.expr) -> bool:
    """Set display, set comprehension, or a ``set(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and dotted_name(node.func) in (
        "set",
        "frozenset",
    )


def _identifiers(node: ast.AST) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


class _ScopedVisitorRule(Rule):
    """Rule implemented as a single-pass visitor over the module tree."""

    def check(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        self.visit(module, module.tree, findings)
        return findings

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        raise NotImplementedError


class IntegerCounterPurity(_ScopedVisitorRule):
    """REPRO001 — counter kernels stay integer-exact.

    Motivated by the PR 2 ``_per_line_sleep`` bug: a ``np.bincount``
    with ``weights=`` silently accumulates in float64, so cycle
    counters lost exactness past 2**53 and differential tests against
    the reference engine drifted. Counters are int64 end to end;
    derived rates belong in ``@property`` accessors.
    """

    rule_id = "REPRO001"
    title = "counter kernels must stay integer-exact (int64, no float math)"
    rationale = (
        "PR 2: float64 np.bincount(weights=...) in _per_line_sleep broke "
        "bit-identity; fixed with np.add.at on an int64 buffer"
    )
    scope = (
        "power/idleness.py",
        "core/fastsim.py",
        "core/streamsim.py",
        "cache/stats.py",
    )
    #: Kernel-only invariant: the default lint scope also walks
    #: benchmarks/ and tools/, where float math is fine by design.
    exclude = ("benchmarks/*", "tools/*")

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        property_spans: list[tuple[int, int]] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(
                    dotted_name(d) in ("property", "cached_property", "functools.cached_property")
                    for d in node.decorator_list
                ):
                    property_spans.append((node.lineno, node.end_lineno or node.lineno))

        def in_property(node: ast.AST) -> bool:
            line = getattr(node, "lineno", 0)
            return any(start <= line <= end for start, end in property_spans)

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name.endswith("bincount") and keyword(node, "weights") is not None:
                    out.append(
                        self.finding(
                            module,
                            node,
                            "np.bincount(weights=...) accumulates in float64; "
                            "counters must stay int64 (use np.add.at on an "
                            "integer buffer)",
                        )
                    )
                dtype = keyword(node, "dtype")
                if dtype is not None and _is_float_dtype_value(dtype.value):
                    out.append(
                        self.finding(
                            module,
                            node,
                            "float dtype in a counter kernel; counters are "
                            "integer-exact (int64)",
                        )
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                if not in_property(node):
                    out.append(
                        self.finding(
                            module,
                            node,
                            "true division in a counter kernel; use // for "
                            "integer math, or move the derived rate into a "
                            "@property",
                        )
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                if not in_property(node):
                    out.append(
                        self.finding(
                            module,
                            node,
                            "in-place true division in a counter kernel; "
                            "counters are integer-exact",
                        )
                    )


class HashStableCodec(_ScopedVisitorRule):
    """REPRO002 — everything feeding a content hash is byte-stable.

    The campaign store keys records by the SHA-256 of canonical JSON;
    a ``json.dumps`` without the canonical kwargs, or a set iterated
    into a payload, makes equal configs hash differently across runs
    (set order is salted per process) and silently forks the store.
    """

    rule_id = "REPRO002"
    title = "codec payloads must be canonical: sorted keys, fixed separators, no NaN, no set iteration"
    rationale = (
        "PR 3: store identity is sha256(canonical_json(payload)); "
        "int/float normalization and key sorting were review findings"
    )
    scope = (
        "campaign/codec.py",
        "campaign/tracespec.py",
        "campaign/spec.py",
    )

    _HASH_SINKS = ("canonical_json", "content_hash", "config_hash", "sha256")

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name.endswith("json.dumps") or name == "dumps":
                if not has_double_star(node):
                    missing = [
                        wanted
                        for wanted in ("sort_keys", "separators", "allow_nan")
                        if keyword(node, wanted) is None
                    ]
                    if missing:
                        out.append(
                            self.finding(
                                module,
                                node,
                                "json.dumps in a codec module without "
                                f"{'/'.join(missing)}; hash-stable payloads "
                                "require sort_keys=True, explicit separators "
                                "and allow_nan=False",
                            )
                        )
            sink = name.rsplit(".", 1)[-1]
            if sink in self._HASH_SINKS or name in ("list", "tuple"):
                for arg in node.args:
                    if _is_set_expr(arg):
                        out.append(
                            self.finding(
                                module,
                                node,
                                "set iteration feeding a hashed payload; set "
                                "order is process-salted — sort first "
                                "(sorted(...))",
                            )
                        )


class AtomicWrites(Rule):
    """REPRO003 — result/meta JSON reaches disk atomically.

    A crash between ``open(path, "w")`` and the final flush leaves a
    truncated JSON file that poisons every later campaign resume. All
    persistent JSON goes through ``write_json_atomic`` (temp file +
    ``os.replace``); this rule's first self-run caught the
    ``meta.json`` write in ``save_trace_mmap``.

    Interprocedural (PR 9): a ``json.dump`` is in an atomic context
    when its enclosing function is ``write_json_atomic`` itself,
    performs the temp-file + ``os.replace`` idiom in its own body, or
    is a helper reached *only* from such functions — the per-module
    version flagged serialization helpers that write_json_atomic
    delegates to, and missed nothing it should have.
    """

    rule_id = "REPRO003"
    title = "persistent JSON must be written via write_json_atomic"
    rationale = (
        "PR 3/5: campaign records are resumable state; the non-atomic "
        "meta.json write in trace/stream.py was this rule's first catch"
    )
    scope = ("*.py",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        memo: dict[tuple[str, str], bool] = {}
        for module in project.modules:
            if not self.applies_to(module.rel_path):
                continue
            symbols = project.symbols[module.rel_path]
            spans = [
                (fn, fn.node.lineno, fn.node.end_lineno or fn.node.lineno)
                for fn in symbols.iter_functions()
            ]
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if not (name.endswith("json.dump") or name == "dump"):
                    continue
                enclosing = self._enclosing(spans, node.lineno)
                if enclosing is not None and self._atomic_context(
                    project, enclosing, memo, frozenset()
                ):
                    continue
                findings.append(
                    self.finding(
                        module,
                        node,
                        "direct json.dump to disk; route persistent JSON through "
                        "repro.core.serialize.write_json_atomic (temp file + "
                        "os.replace) so a crash can never truncate it",
                    )
                )
        return findings

    @staticmethod
    def _enclosing(
        spans: list[tuple[FunctionInfo, int, int]], line: int
    ) -> FunctionInfo | None:
        """Innermost known function whose span contains ``line``."""
        best: FunctionInfo | None = None
        best_size = 0
        for fn, start, end in spans:
            if start <= line <= end and (best is None or end - start < best_size):
                best, best_size = fn, end - start
        return best

    def _atomic_context(
        self,
        project: Project,
        function: FunctionInfo,
        memo: dict[tuple[str, str], bool],
        stack: frozenset[tuple[str, str]],
    ) -> bool:
        """Whether every path into ``function`` is an atomic write."""
        cached = memo.get(function.key)
        if cached is not None:
            return cached
        if function.key in stack:
            return False
        if function.name == "write_json_atomic" or self._replaces_in_place(function):
            memo[function.key] = True
            return True
        callers = project.callers(function)
        result = bool(callers) and all(
            self._atomic_context(project, caller, memo, stack | {function.key})
            for caller in callers
        )
        memo[function.key] = result
        return result

    @staticmethod
    def _replaces_in_place(function: FunctionInfo) -> bool:
        return any(
            isinstance(node, ast.Call)
            and call_name(node) in ("os.replace", "os.rename")
            for node in ast.walk(function.node)
        )


class RegistryDiscipline(_ScopedVisitorRule):
    """REPRO004 — dispatch on capabilities, not engine-name strings.

    PR 4 turned every ``engine == "fast"`` special case into a
    registry capability query (``supports()``, ``run_group``,
    ``supports_streaming``); a name comparison outside the registry
    module silently excludes third-party engines from whole code paths.
    """

    rule_id = "REPRO004"
    title = "no engine-name string comparisons outside the registry"
    rationale = (
        "PR 4: the sweep's breakeven fast path once keyed on the name "
        "'fast'; plugins with the same capability were skipped"
    )
    scope = ("*.py",)
    #: The registry itself resolves names; that is its job.
    exclude = ("core/engine.py",)

    @staticmethod
    def _engine_name_constants(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, str) and node.value in ENGINE_NAMES
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(
                isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
                and elt.value in ENGINE_NAMES
                for elt in node.elts
            )
        return False

    @staticmethod
    def _mentions_engine(node: ast.expr) -> bool:
        return any("engine" in ident.lower() for ident in _identifiers(node))

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
                for op in node.ops
            ):
                continue
            operands = [node.left, *node.comparators]
            if not any(self._engine_name_constants(operand) for operand in operands):
                continue
            if not any(
                self._mentions_engine(operand)
                for operand in operands
                if not self._engine_name_constants(operand)
            ):
                continue
            out.append(
                self.finding(
                    module,
                    node,
                    "engine-name string comparison; dispatch through the "
                    "registry instead (resolve_engine / supports() / "
                    "result_family / supports_streaming)",
                )
            )


class SpawnSafeWorkers(_ScopedVisitorRule):
    """REPRO005 — process pools ship state via the initializer.

    Under the spawn start method (macOS/Windows default) workers
    inherit nothing: lambdas and closures fail to pickle, and module
    globals captured at fork time silently vanish. The sweep ships the
    trace, LUT and plugin registries through the pool initializer;
    anything submitted must be a top-level function.
    """

    rule_id = "REPRO005"
    title = "process-pool work must be spawn-safe (initializer-shipped state, no lambdas)"
    rationale = (
        "PR 2/4: the parallel sweep's trace and plugin registries "
        "travel via the pool initializer; spawn-mode plugin sweeps "
        "were a review catch"
    )
    scope = (
        "analysis/sweep.py",
        "campaign/run.py",
        "campaign/service/queue.py",
        "core/streamsim.py",
    )

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name.endswith("ProcessPoolExecutor"):
                if keyword(node, "initializer") is None and not has_double_star(node):
                    out.append(
                        self.finding(
                            module,
                            node,
                            "ProcessPoolExecutor without initializer=; shared "
                            "state (trace, LUT, plugin registries) must be "
                            "shipped to spawn-mode workers explicitly",
                        )
                    )
            elif name.rsplit(".", 1)[-1] in ("submit", "map") and "." in name:
                for arg in node.args[:1]:
                    if isinstance(arg, ast.Lambda):
                        out.append(
                            self.finding(
                                module,
                                node,
                                "lambda submitted to a process pool; lambdas "
                                "do not pickle under spawn — use a top-level "
                                "function",
                            )
                        )


class ExceptionPolicy(_ScopedVisitorRule):
    """REPRO006 — failures are loud and derive from ``repro.errors``.

    Callers contract on ``except ReproError``; a bare ``except`` or a
    raised builtin breaks that contract, and a silent ``pass`` handler
    hides corruption until a store or sweep is already wrong.
    """

    rule_id = "REPRO006"
    title = "no bare except / silent pass; library errors derive from repro.errors"
    rationale = (
        "errors.py: 'callers can catch library failures with a single "
        "except clause' — only true if nothing raises bare builtins"
    )
    scope = ("*.py",)

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    out.append(
                        self.finding(
                            module,
                            node,
                            "bare except: catches SystemExit/KeyboardInterrupt "
                            "too; name the exceptions you can actually handle",
                        )
                    )
                if (
                    len(node.body) == 1
                    and isinstance(node.body[0], ast.Pass)
                    and node.type is not None
                    and dotted_name(node.type) not in ("OSError", "KeyError")
                ):
                    # except OSError: pass around best-effort cleanup
                    # (e.g. unlinking a temp file) is the one sanctioned
                    # swallow; everything else must handle or re-raise.
                    out.append(
                        self.finding(
                            module,
                            node,
                            "exception silently swallowed (except ...: pass); "
                            "handle it, re-raise, or narrow to best-effort "
                            "cleanup (OSError)",
                        )
                    )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                name = (
                    call_name(exc) if isinstance(exc, ast.Call) else dotted_name(exc)
                )
                if name in _FORBIDDEN_RAISES:
                    out.append(
                        self.finding(
                            module,
                            node,
                            f"raise {name}: library errors must derive from "
                            "repro.errors.ReproError so callers can catch "
                            "them with one except clause",
                        )
                    )


class Determinism(_ScopedVisitorRule):
    """REPRO007 — library results never depend on wall clock or global RNG.

    Bit-identical reproduction is the repo's headline claim; randomness
    flows from profile/spec seeds through ``np.random.default_rng``,
    and nothing in library code reads the clock into a result.
    ``time.perf_counter`` stays allowed: it feeds progress display,
    never results.
    """

    rule_id = "REPRO007"
    title = "no wall-clock reads or unseeded global RNG in library code"
    rationale = (
        "trace/synthetic.py threads seeds end-to-end; a np.random.* "
        "module call would make campaigns unreproducible"
    )
    scope = ("*.py",)

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in ("time.time", "time.time_ns"):
                out.append(
                    self.finding(
                        module,
                        node,
                        f"{name}() in library code; results must not depend "
                        "on the wall clock (time.perf_counter is fine for "
                        "progress display)",
                    )
                )
            elif name.startswith("datetime.") and name.rsplit(".", 1)[-1] in (
                "now",
                "utcnow",
                "today",
            ):
                out.append(
                    self.finding(
                        module,
                        node,
                        f"{name}() in library code; timestamps are inputs, "
                        "not ambient state",
                    )
                )
            elif name in ("os.urandom", "uuid.uuid4", "secrets.token_hex"):
                out.append(
                    self.finding(
                        module,
                        node,
                        f"{name}() is unseedable; identity and randomness "
                        "must flow from profile/spec seeds",
                    )
                )
            else:
                parts = name.split(".")
                if (
                    len(parts) >= 3
                    and parts[-2] == "random"
                    and parts[0] in ("np", "numpy")
                    and parts[-1] not in _SEEDED_RANDOM_API
                ):
                    out.append(
                        self.finding(
                            module,
                            node,
                            f"{name}() uses numpy's process-global RNG; build "
                            "a Generator from a seed "
                            "(np.random.default_rng(seed))",
                        )
                    )
                elif (
                    len(parts) == 2
                    and parts[0] == "random"
                    and parts[1] in _STDLIB_RANDOM_FNS
                ):
                    out.append(
                        self.finding(
                            module,
                            node,
                            f"{name}() draws from the stdlib global RNG; "
                            "randomness must flow from seeds",
                        )
                    )


class StreamingCarry(_ScopedVisitorRule):
    """REPRO008 — carry state survives the per-chunk path.

    The streaming engine's whole correctness story is that tracker and
    gap state established in ``__init__`` is *mutated* chunk by chunk;
    rebinding such an attribute to a fresh array/zero inside the
    per-chunk path resets the carry and the results silently diverge
    from the one-shot engines (only on multi-chunk inputs, which is
    exactly where tests are thinnest).
    """

    rule_id = "REPRO008"
    title = "carry-state attributes must not be re-initialized per chunk"
    rationale = (
        "PR 5: StreamingGapAccumulator / tracker stacks carry per-bank "
        "state across chunks; bit-identity to the one-shot kernels "
        "depends on it"
    )
    scope = ("core/streamsim.py", "power/idleness.py")
    #: Kernel-only invariant (see REPRO001's exclude).
    exclude = ("benchmarks/*", "tools/*")

    _PER_CHUNK_METHODS = frozenset(
        {"process", "process_chunk", "update", "add", "advance", "consume"}
    )

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            carry: set[str] = set()
            for method in cls.body:
                if (
                    isinstance(method, ast.FunctionDef)
                    and method.name == "__init__"
                ):
                    for node in ast.walk(method):
                        if isinstance(node, ast.Assign):
                            for target in node.targets:
                                if (
                                    isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"
                                ):
                                    carry.add(target.attr)
            if not carry:
                continue
            for method in cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                if method.name not in self._PER_CHUNK_METHODS:
                    continue
                for node in ast.walk(method):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr in carry
                        ):
                            continue
                        if self._is_fresh_state(node.value):
                            out.append(
                                self.finding(
                                    module,
                                    node,
                                    f"carry attribute self.{target.attr} is "
                                    f"re-initialized inside {method.name}(); "
                                    "carry state must persist across chunks "
                                    "(mutate in place or derive from the "
                                    "previous value)",
                                )
                            )

    @staticmethod
    def _is_fresh_state(value: ast.expr) -> bool:
        if isinstance(value, ast.Constant):
            return True
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp)):
            return True
        if isinstance(value, ast.Call):
            return dotted_name(value.func).rsplit(".", 1)[-1] in _FRESH_STATE_CALLS
        return False


class KernelBackendEncapsulation(_ScopedVisitorRule):
    """REPRO009 — compiled kernel backends are private to the package.

    ``repro.kernels`` guarantees bit-identical results across its
    numpy/numba/C backends *through the dispatch layer*: the public
    functions validate inputs, honor ``REPRO_KERNELS`` and the
    ``set_backend``/``use_backend`` overrides, and fall back when a
    compiled backend is unavailable. An import of ``_numba``/``_cext``/
    ``_numpy`` elsewhere bypasses all of that — it crashes on machines
    without the dependency and silently pins one backend.
    """

    rule_id = "REPRO009"
    title = "no direct imports of compiled kernel backends outside repro.kernels"
    rationale = (
        "PR 7: the dispatch layer (repro.kernels) owns backend "
        "selection and fallback; a direct _numba/_cext import breaks "
        "numpy-only environments"
    )
    scope = ("*.py",)
    #: The package itself wires its backends together.
    exclude = ("kernels/*.py",)

    _PRIVATE_BACKENDS = frozenset({"_numpy", "_numba", "_cext", "_ckernels"})

    def _is_private_kernel_module(self, dotted: str) -> bool:
        parts = dotted.split(".")
        if "kernels" not in parts:
            return False
        index = parts.index("kernels")
        return index + 1 < len(parts) and parts[index + 1] in self._PRIVATE_BACKENDS

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                offenders = [
                    alias.name
                    for alias in node.names
                    if self._is_private_kernel_module(alias.name)
                ]
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if self._is_private_kernel_module(source):
                    offenders = [source]
                elif source.endswith("kernels") or source == "kernels":
                    offenders = [
                        f"{source}.{alias.name}"
                        for alias in node.names
                        if alias.name in self._PRIVATE_BACKENDS
                    ]
                else:
                    offenders = []
            else:
                continue
            for name in offenders:
                out.append(
                    self.finding(
                        module,
                        node,
                        f"direct import of private kernel backend {name}; go "
                        "through repro.kernels (the dispatch layer owns "
                        "backend selection, validation and numpy fallback)",
                    )
                )


class SqliteEncapsulation(_ScopedVisitorRule):
    """REPRO010 — SQLite connections are private to the campaign index.

    A ``sqlite3.Connection`` must never cross a process fork: a child
    inheriting the parent's handle corrupts SQLite's locking state, and
    the campaign work queue forks workers freely. The index module owns
    the one sanctioned ``connect`` site and hands out lazily created
    per-pid, per-thread connections; everything else goes through
    :class:`repro.campaign.service.index.CampaignIndex`.

    Interprocedural (PR 9): the index module itself must not leak
    either — a *public* function or method that returns a connection
    (directly, through an assignment chain, or by delegating to a
    helper that does) hands the fork-hostile handle to arbitrary
    callers, which is the same bug with extra steps.
    """

    rule_id = "REPRO010"
    title = "no sqlite3.connect outside campaign/service/index.py"
    rationale = (
        "PR 8: the work queue forks worker processes; a connection "
        "opened elsewhere and inherited across fork() corrupts the "
        "index database's locking state"
    )
    scope = ("*.py",)
    #: The index module is the one sanctioned connect site (but its
    #: public surface is still checked for escaping connections).
    exclude = ("campaign/service/index.py",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            if self.applies_to(module.rel_path):
                self.visit(module, module.tree, findings)
            elif self._matches(module.rel_path, self.exclude):
                self._check_index_surface(project, module, findings)
        return findings

    def _check_index_surface(
        self, project: Project, module: Module, out: list[Finding]
    ) -> None:
        """Flag public index functions that return a connection."""
        symbols = project.symbols[module.rel_path]
        for fn in symbols.iter_functions():
            if fn.name.startswith("_"):
                continue
            if self._returns_connection(project, fn, frozenset()):
                out.append(
                    self.finding(
                        module,
                        fn.node,
                        f"{fn.qualname} returns a sqlite3 connection out of "
                        "the index module; handles are per-pid/per-thread "
                        "private state — expose an operation on the index, "
                        "not the connection",
                    )
                )

    def _returns_connection(
        self,
        project: Project,
        function: FunctionInfo,
        stack: frozenset[tuple[str, str]],
    ) -> bool:
        if function.key in stack:
            return False
        returns = function.node.returns
        if returns is not None:
            annotated = dotted_name(returns)
            if not annotated and isinstance(returns, ast.Constant):
                annotated = str(returns.value)
            if annotated.rsplit(".", 1)[-1] == "Connection":
                return True
        for call in function.dataflow.returned_calls():
            if call_name(call) in ("sqlite3.connect", "sqlite3.dbapi2.connect"):
                return True
            for callee in project.resolve_call(call, function):
                if self._returns_connection(
                    project, callee, stack | {function.key}
                ):
                    return True
        return False

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and call_name(node) in (
                "sqlite3.connect",
                "sqlite3.dbapi2.connect",
            ):
                out.append(
                    self.finding(
                        module,
                        node,
                        "direct sqlite3.connect; connections must not cross "
                        "process forks — go through "
                        "repro.campaign.service.index.CampaignIndex, which "
                        "opens per-pid, per-thread connections lazily",
                    )
                )
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "sqlite3",
                "sqlite3.dbapi2",
            ):
                for alias in node.names:
                    if alias.name in ("connect", "Connection"):
                        out.append(
                            self.finding(
                                module,
                                node,
                                f"from sqlite3 import {alias.name}; SQLite "
                                "access goes through repro.campaign.service."
                                "index.CampaignIndex (fork-safe connections)",
                            )
                        )


#: Constructors whose result is fork-hostile when stored in a module
#: global: the child either shares the parent's kernel state (files,
#: sockets, sqlite) or silently duplicates it (locks, RNG streams).
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore", "Barrier"}
)
_RNG_CTORS = frozenset({"default_rng", "Random", "RandomState"})
_QUEUE_CTORS = frozenset({"Queue", "SimpleQueue", "LifoQueue", "PriorityQueue"})
_FILE_CTORS = frozenset({"NamedTemporaryFile", "TemporaryFile"})


class ForkSafety(Rule):
    """REPRO011 — no fork-hostile module globals in pool-worker code.

    ``drain_campaign`` forks worker processes. A module-global lock is
    cloned in a possibly-held state (instant deadlock), a global file
    handle or sqlite connection shares one file offset / locking state
    across every worker, and a global RNG instance hands each fork the
    same stream. State a worker needs must be created inside the
    worker or shipped through the pool initializer — that is exactly
    the ``_drain_state`` pattern in ``campaign/service/queue.py``.
    """

    rule_id = "REPRO011"
    title = "no fork-hostile module globals reachable from pool workers"
    rationale = (
        "PR 8: drain workers fork; module globals holding locks, "
        "handles, connections or RNGs are silently shared or "
        "duplicated across the fork boundary"
    )
    scope = ("*.py",)

    @staticmethod
    def _stateful_label(value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        head, _, _ = name.partition(".")
        tail = name.rsplit(".", 1)[-1]
        if tail in _LOCK_CTORS and (
            name == tail or head in ("threading", "multiprocessing")
        ):
            return "a synchronization primitive"
        if tail == "connect" and "sqlite" in name:
            return "a sqlite3 connection"
        if name == "open" or name in ("io.open", "os.fdopen", "gzip.open"):
            return "an open file handle"
        if tail in _FILE_CTORS:
            return "an open temporary file"
        if tail in _RNG_CTORS and (
            name == tail or head in ("np", "numpy", "random")
        ):
            return "an RNG instance"
        if tail in _QUEUE_CTORS and (
            name == tail or head in ("queue", "multiprocessing")
        ):
            return "an in-process queue"
        return None

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        worker_reach = project.service_reachable(kinds=("process",))
        if not worker_reach:
            return findings
        for module in project.modules:
            if not self.applies_to(module.rel_path):
                continue
            symbols = project.symbols[module.rel_path]
            for name in sorted(symbols.globals):
                label = self._stateful_label(symbols.globals[name])
                if label is None:
                    continue
                readers = [
                    reader
                    for reader in project.global_readers(module.rel_path, name)
                    if reader.key in worker_reach
                ]
                if not readers:
                    continue
                reader = min(readers, key=lambda f: (f.module.rel_path, f.qualname))
                findings.append(
                    self.finding(
                        module,
                        symbols.global_nodes[name],
                        f"module global {name} holds {label} and is read by "
                        f"pool-worker code ({reader.qualname}); state "
                        "inherited across fork() is silently shared or "
                        "stale — create it inside the worker or ship it "
                        "via the pool initializer",
                    )
                )
        return findings


class ThreadSharedMutation(Rule):
    """REPRO012 — thread-shared attributes are written under a lock.

    The service runs real threads: the drain loop, the work queue's
    heartbeat, and one HTTP handler per request. An attribute written
    both on a thread path and from ordinary code without either write
    holding the owning class's lock is a data race — exactly the
    ``CampaignService._active`` / ``_last_error`` shape PR 8 guards
    with ``self._lock``.
    """

    rule_id = "REPRO012"
    title = "attributes shared between thread and non-thread paths need the owner's lock"
    rationale = (
        "PR 8: the drain loop and HTTP handlers mutate service state "
        "concurrently; every shared write goes through self._lock"
    )
    scope = ("*.py",)

    _LOCK_CTOR_TAILS = frozenset({"Lock", "RLock", "Condition"})

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        owners: dict[int, tuple[ClassInfo, list[FunctionInfo]]] = {}
        for entry in project.entry_points():
            cls = entry.function.cls
            if entry.kind != "thread" or cls is None:
                continue
            owners.setdefault(id(cls), (cls, []))[1].append(entry.function)
        for cls, entry_methods in owners.values():
            if not self.applies_to(cls.module.rel_path):
                continue
            thread_keys = project.reachable_from(entry_methods)
            lock_attrs = self._lock_attrs(cls)
            lock_contexts = {f"self.{attr}" for attr in lock_attrs}
            writes: dict[str, list[tuple[ast.stmt, bool, FunctionInfo, bool]]] = {}

            def record(
                attr: str, stmt: ast.stmt, locked: bool, method: FunctionInfo
            ) -> None:
                writes.setdefault(attr, []).append(
                    (stmt, locked, method, method.key in thread_keys)
                )

            for method in cls.methods.values():
                if method.name == "__init__":
                    continue
                self._walk_writes(
                    method.node.body, False, lock_contexts, method, record
                )
            for attr in sorted(writes):
                if attr in lock_attrs:
                    continue
                unlocked_thread = [
                    w for w in writes[attr] if w[3] and not w[1]
                ]
                unlocked_other = [
                    w for w in writes[attr] if not w[3] and not w[1]
                ]
                if not (unlocked_thread and unlocked_other):
                    continue
                stmt, _, method, _ = unlocked_thread[0]
                _, _, other, _ = unlocked_other[0]
                findings.append(
                    self.finding(
                        cls.module,
                        stmt,
                        f"self.{attr} is written on the thread path "
                        f"({cls.name}.{method.name}, a thread/handler entry "
                        f"path) and from non-thread code ({cls.name}."
                        f"{other.name}, line {unlocked_other[0][0].lineno}) "
                        "with neither write holding a lock; guard both "
                        "sides with the class's lock",
                    )
                )
        return findings

    def _lock_attrs(self, cls: ClassInfo) -> set[str]:
        init = cls.methods.get("__init__")
        attrs: set[str] = set()
        if init is None:
            return attrs
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Call)
                and dotted_name(node.value.func).rsplit(".", 1)[-1]
                in self._LOCK_CTOR_TAILS
            ):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
        return attrs

    def _walk_writes(
        self,
        stmts: Iterable[ast.stmt],
        locked: bool,
        lock_contexts: set[str],
        method: FunctionInfo,
        record: "object",
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs get their own story
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                holds = locked or any(
                    dotted_name(item.context_expr) in lock_contexts
                    for item in stmt.items
                )
                self._walk_writes(stmt.body, holds, lock_contexts, method, record)
                continue
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                base = target
                if isinstance(base, ast.Subscript):
                    base = base.value  # self.x[k] = v mutates self.x
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    record(base.attr, stmt, locked, method)  # type: ignore[operator]
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field, None)
                if inner:
                    self._walk_writes(inner, locked, lock_contexts, method, record)
            for handler in getattr(stmt, "handlers", None) or []:
                self._walk_writes(handler.body, locked, lock_contexts, method, record)


class ResourceHygiene(Rule):
    """REPRO013 — handles in service-reachable code cannot escape.

    Workers and handler threads run for the life of the service; a
    file handle that escapes ``with``/``try-finally`` there is not
    cleaned up "soon" by refcounting — it survives exceptions and
    accumulates until the process hits the descriptor limit mid-
    campaign. Ownership transfer (returning the handle) is the one
    sanctioned escape: the caller is then on the hook.
    """

    rule_id = "REPRO013"
    title = "open()/NamedTemporaryFile in service-reachable code must use with/try-finally"
    rationale = (
        "PR 8: the service is long-lived; leaked descriptors in worker "
        "or handler paths accumulate until open() itself fails"
    )
    scope = ("*.py",)

    _RESOURCE_NAMES = frozenset(
        {"open", "io.open", "os.fdopen", "gzip.open", "bz2.open", "lzma.open"}
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        reach = project.service_reachable()
        for function in project.iter_functions():
            if function.key not in reach:
                continue
            if not self.applies_to(function.module.rel_path):
                continue
            self._check_function(function, findings)
        return findings

    def _check_function(
        self, function: FunctionInfo, out: list[Finding]
    ) -> None:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(function.node):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if not (
                name in self._RESOURCE_NAMES
                or name.rsplit(".", 1)[-1] in _FILE_CTORS
            ):
                continue
            if self._managed(node, parents, function):
                continue
            out.append(
                self.finding(
                    function.module,
                    node,
                    f"{name}(...) escapes {function.qualname} without "
                    "with/try-finally; this code is reachable from a "
                    "service worker or handler thread, where a leaked "
                    "handle survives until process exit — use a context "
                    "manager (or return the handle to transfer ownership)",
                )
            )

    def _managed(
        self,
        call: ast.Call,
        parents: dict[ast.AST, ast.AST],
        function: FunctionInfo,
    ) -> bool:
        parent = parents.get(call)
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, ast.Return):
            return True  # ownership transferred to the caller
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and function.cls is not None
                    and any(
                        hook in function.cls.methods
                        for hook in ("close", "__exit__", "__del__")
                    )
                ):
                    return True  # instance owns it; its close() releases
            names = [
                name
                for target in parent.targets
                for name in assigned_names(target)
            ]
            for name in names:
                if self._used_as_context(function.node, name):
                    return True
                if self._closed_in_finally(function.node, name):
                    return True
                if self._returned(function, name):
                    return True
        return False

    @staticmethod
    def _used_as_context(func: ast.AST, name: str) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
                if isinstance(expr, ast.Call) and any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in expr.args
                ):
                    return True  # with contextlib.closing(handle):
        return False

    @staticmethod
    def _closed_in_finally(func: ast.AST, name: str) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and dotted_name(sub.func) == f"{name}.close"
                    ):
                        return True
        return False

    @staticmethod
    def _returned(function: FunctionInfo, name: str) -> bool:
        return any(
            isinstance(value, ast.Name) and value.id == name
            for value in function.dataflow.returns
        )


class ExportIntegrity(Rule):
    """REPRO014 — ``__all__`` stays truthful as surfaces move.

    Package ``__init__`` modules re-export aggressively (PR 4 made the
    registry surface importable from ``repro``); a symbol renamed in
    its home module but left in ``__all__`` breaks star-imports with a
    late AttributeError and quietly rots the documented surface. A
    module-level ``__getattr__`` counts as defining everything —
    ``repro.core`` lazy-loads exactly this way.
    """

    rule_id = "REPRO014"
    title = "__all__ names must be defined, unique, and re-exports must resolve"
    rationale = (
        "PR 4/8: the package surface is re-export-heavy; __all__ drift "
        "is invisible until a star-import or doc build fails"
    )
    scope = ("*.py",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            if not self.applies_to(module.rel_path):
                continue
            symbols = project.symbols[module.rel_path]
            if symbols.all_names is None:
                continue
            node: ast.AST = symbols.all_node or module.tree
            seen: set[str] = set()
            for name in symbols.all_names:
                if name in seen:
                    findings.append(
                        self.finding(
                            module, node, f"duplicate name {name!r} in __all__"
                        )
                    )
                    continue
                seen.add(name)
                if not symbols.defines(name):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"{name!r} is exported in __all__ but not defined "
                            "in the module (dead export)",
                        )
                    )
                    continue
                entry = symbols.imports.get(name)
                if entry is None:
                    continue
                source_dotted, original = entry
                if original is None:
                    continue
                source = project.resolve_module(source_dotted)
                if source is not None and not source.defines(original):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"re-export drift: __all__ exports {name!r} but "
                            f"{source_dotted} no longer defines {original!r}",
                        )
                    )
        return findings


class EstimatorIsolation(_ScopedVisitorRule):
    """REPRO015 — the estimate tier never touches the replay machinery.

    The whole point of ``repro.estimate`` is that its predictions come
    from closed-form arithmetic over trace *statistics* — if it could
    call into the replay simulators (``core/fastsim``,
    ``core/streamsim``) or the compiled counter kernels, an "estimate"
    could quietly become a disguised simulation and the fidelity tag on
    its records would stop meaning anything. The estimator reaches
    simulation results only through the engine registry (validation
    compares against them — via :mod:`repro.analysis.sweep`, which is
    fine: that *is* the simulate tier, honestly labeled).
    """

    rule_id = "REPRO015"
    title = "repro.estimate must not import replay internals (fastsim/streamsim/kernels)"
    rationale = (
        "PR 10: the estimate fidelity tier is closed-form by contract; "
        "importing the replay machinery would let a tagged estimate "
        "secretly replay the trace"
    )
    scope = ("estimate/*.py",)

    #: Module leaves of ``repro.core`` that constitute trace replay.
    _REPLAY_LEAVES = frozenset({"fastsim", "streamsim"})

    def _offending(self, dotted: str) -> bool:
        parts = dotted.split(".")
        if "kernels" in parts:
            return True
        return bool(self._REPLAY_LEAVES & set(parts))

    def visit(self, module: Module, tree: ast.AST, out: list[Finding]) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                offenders = [
                    alias.name
                    for alias in node.names
                    if self._offending(alias.name)
                ]
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if self._offending(source):
                    offenders = [source]
                else:
                    # `from repro.core import fastsim` and relative
                    # spellings (`from ..core import streamsim`).
                    offenders = [
                        f"{source}.{alias.name}" if source else alias.name
                        for alias in node.names
                        if self._offending(alias.name)
                    ]
            else:
                continue
            for name in offenders:
                out.append(
                    self.finding(
                        module,
                        node,
                        f"estimate tier imports replay machinery {name}; "
                        "the closed-form model must predict from trace "
                        "statistics only (REPRO015 keeps the fidelity "
                        "tag honest)",
                    )
                )


def _register_builtins() -> None:
    for rule_cls in (
        IntegerCounterPurity,
        HashStableCodec,
        AtomicWrites,
        RegistryDiscipline,
        SpawnSafeWorkers,
        ExceptionPolicy,
        Determinism,
        StreamingCarry,
        KernelBackendEncapsulation,
        SqliteEncapsulation,
        ForkSafety,
        ThreadSharedMutation,
        ResourceHygiene,
        ExportIntegrity,
        EstimatorIsolation,
    ):
        register_rule(rule_cls(), replace=True)


_register_builtins()
