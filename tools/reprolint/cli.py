"""``python -m reprolint`` / ``repro lint`` command-line front-end.

Exit codes: 0 clean (after baseline), 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import os
import sys

from reprolint.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from reprolint.framework import LintError, rule_ids, run_lint
from reprolint.report import render_json, render_rules, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant linter for the repro simulation core: "
            "encodes the repo's review-hardened invariants (integer-exact "
            "counters, hash-stable codecs, atomic writes, registry "
            "dispatch, spawn-safe workers, ...) as mechanical checks."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} if it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rules())
        return 0

    select = None
    if args.select:
        select = tuple(part.strip() for part in args.select.split(",") if part.strip())

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    try:
        findings = run_lint(args.paths, select=select)
        if args.write_baseline:
            target = baseline_path or DEFAULT_BASELINE
            save_baseline(target, findings)
            print(
                f"reprolint: wrote {len(findings)} finding(s) to {target}",
                file=sys.stderr,
            )
            return 0
        baseline_entries = load_baseline(baseline_path) if baseline_path else []
    except LintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    fresh, suppressed = apply_baseline(findings, baseline_entries)
    render = render_json if args.format == "json" else render_text
    print(render(fresh, suppressed))
    return 1 if fresh else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
