"""``python -m reprolint`` / ``repro lint`` command-line front-end.

Exit codes: 0 clean (after baseline), 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import os
import sys

from reprolint.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from reprolint.framework import LintError, rule_ids, run_lint
from reprolint.report import (
    render_github,
    render_json,
    render_rules,
    render_sarif,
    render_text,
)

#: Everything linted when no paths are given: the library, the linter
#: itself, and the benchmark harnesses. Kernel-only rules carve these
#: extra trees out via their ``exclude`` patterns.
DEFAULT_PATHS = ("src/repro", "tools/reprolint", "benchmarks")

_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
    "sarif": render_sarif,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant linter for the repro simulation core: "
            "encodes the repo's review-hardened invariants (integer-exact "
            "counters, hash-stable codecs, atomic writes, registry "
            "dispatch, spawn-safe workers, ...) as mechanical checks."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to lint "
            f"(default: {' '.join(DEFAULT_PATHS)}, skipping any that "
            "do not exist)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--format",
        choices=tuple(_RENDERERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--no-check-pragmas",
        action="store_true",
        help=(
            "do not report dead '# reprolint: disable=...' pragmas "
            "(pragmas that suppress zero findings)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} if it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rules())
        return 0

    select = None
    if args.select:
        select = tuple(part.strip() for part in args.select.split(",") if part.strip())

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    paths = args.paths
    if not paths:
        # The implicit default tolerates missing trees (a sparse
        # checkout without benchmarks/ still lints what it has);
        # explicitly named paths must exist.
        paths = [path for path in DEFAULT_PATHS if os.path.exists(path)]
        if not paths:
            print(
                "reprolint: error: none of the default paths "
                f"({', '.join(DEFAULT_PATHS)}) exist here",
                file=sys.stderr,
            )
            return 2

    try:
        findings = run_lint(
            paths, select=select, check_pragmas=not args.no_check_pragmas
        )
        if args.write_baseline:
            target = baseline_path or DEFAULT_BASELINE
            save_baseline(target, findings)
            print(
                f"reprolint: wrote {len(findings)} finding(s) to {target}",
                file=sys.stderr,
            )
            return 0
        baseline_entries = load_baseline(baseline_path) if baseline_path else []
    except LintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    fresh, suppressed = apply_baseline(findings, baseline_entries)
    rendered = _RENDERERS[args.format](fresh, suppressed)
    if rendered:
        print(rendered)
    return 1 if fresh else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
