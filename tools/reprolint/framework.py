"""reprolint framework: modules, findings, and the rule registry.

The linter mirrors the shape of :mod:`repro.core.engine`: rules are
small objects registered under a stable id (``REPRO001``...), every
consumer resolves them through one registry, and built-ins register
themselves when :mod:`reprolint.rules` imports. A rule sees one parsed
module at a time and yields :class:`Finding` objects; scoping (which
modules a rule audits) lives on the rule itself, so an invariant that
only holds in the counter kernels never fires on unrelated code.

Suppression, in order of preference:

* fix the code (the whole point);
* an inline pragma ``# reprolint: disable=REPRO003`` on the offending
  line (or ``disable=all``), for the rare deliberate exception;
* a baseline file entry (see :mod:`reprolint.baseline`) for
  grandfathered findings that a future PR will burn down.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Iterable, Iterator


class LintError(Exception):
    """The linter itself was misconfigured (bad rule id, bad select...)."""


#: ``# reprolint: disable=REPRO001,REPRO002`` (or ``disable=all``).
_PRAGMA = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Rule ids look like REPRO001 — stable, grep-able, sortable.
_RULE_ID = re.compile(r"^REPRO\d{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching.

        Deliberately excludes the line number: a grandfathered finding
        must not resurface just because unrelated edits moved it.
        """
        return (self.rule_id, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class Module:
    """One parsed source module handed to every applicable rule."""

    def __init__(self, path: str, rel_path: str, text: str) -> None:
        self.path = path
        #: posix-style path relative to the lint invocation root; this
        #: is what scopes match and what findings report.
        self.rel_path = rel_path.replace(os.sep, "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)

    def disabled_on_line(self, line: int) -> frozenset[str]:
        """Rule ids suppressed by an inline pragma on ``line``."""
        if 1 <= line <= len(self.lines):
            match = _PRAGMA.search(self.lines[line - 1])
            if match:
                return frozenset(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
        return frozenset()


class Rule:
    """Base class (and protocol) for lint rules.

    Attributes
    ----------
    rule_id:
        Stable registry key, ``REPRO`` + three digits.
    title:
        One-line invariant statement (shown by ``--list-rules``).
    rationale:
        The historical bug or review note the rule encodes.
    scope:
        Glob patterns of module paths the rule audits. A pattern
        matches the module's reported path directly or as a suffix
        (``power/idleness.py`` matches ``src/repro/power/idleness.py``),
        so rules behave identically however the linter is invoked.
    exclude:
        Glob patterns (same matching as ``scope``) carved *out* of the
        scope — e.g. a kernel-only invariant explicitly excluding the
        benchmark and tooling trees, or a rule exempting the one module
        allowed to own a resource.

    A rule implements either :meth:`check` (one module at a time) or
    :meth:`check_project` (the whole program at once) — ``run_lint``
    calls whichever the subclass overrides, so per-module rules are
    untouched by the whole-program machinery.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    scope: tuple[str, ...] = ("*.py",)
    exclude: tuple[str, ...] = ()

    @staticmethod
    def _matches(rel_path: str, patterns: Iterable[str]) -> bool:
        return any(
            fnmatch(rel_path, pattern) or fnmatch(rel_path, "*/" + pattern)
            for pattern in patterns
        )

    def applies_to(self, rel_path: str) -> bool:
        if self._matches(rel_path, self.exclude):
            return False
        return self._matches(rel_path, self.scope)

    def check(self, module: Module) -> Iterable[Finding]:
        """Yield findings for ``module``; rules must not mutate it."""
        raise NotImplementedError

    def check_project(self, project: "object") -> Iterable[Finding]:
        """Yield findings for the whole project model.

        Override for rules whose invariant is a *program* property
        (reachability, import structure, cross-module dataflow). The
        ``project`` argument is a :class:`reprolint.project.Project`;
        the rule is responsible for honoring its own ``scope`` via
        :meth:`applies_to` when it attributes findings to modules.
        """
        raise NotImplementedError

    @property
    def is_project_rule(self) -> bool:
        """Whether this rule overrides :meth:`check_project`."""
        return type(self).check_project is not Rule.check_project

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the module that registers the built-in rules (once)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import reprolint.rules  # noqa: F401  (registers the REPRO built-ins)


def register_rule(rule: Rule, replace: bool = False) -> None:
    """Add ``rule`` to the registry under ``rule.rule_id``.

    Raises
    ------
    LintError
        For a malformed id or a duplicate registration without
        ``replace=True`` — two rules silently shadowing each other is
        exactly the bug a registry must prevent.
    """
    rule_id = getattr(rule, "rule_id", "")
    if not _RULE_ID.match(rule_id or ""):
        raise LintError(
            f"rule id {rule_id!r} is malformed; expected REPRO followed by 3 digits"
        )
    if not replace and rule_id in _REGISTRY:
        raise LintError(
            f"rule {rule_id} is already registered; pass replace=True to override"
        )
    _REGISTRY[rule_id] = rule


def unregister_rule(rule_id: str) -> None:
    """Remove a registered rule (primarily for tests and plugins)."""
    _ensure_builtins()
    if _REGISTRY.pop(rule_id, None) is None:
        raise LintError(f"unknown rule {rule_id!r}; known: {', '.join(rule_ids())}")


def rule_ids() -> tuple[str, ...]:
    """All registered rule ids, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    """Look up a registered rule by id, with a self-diagnosing error."""
    _ensure_builtins()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(
            f"unknown rule {rule_id!r}; known: {', '.join(rule_ids())}"
        ) from None


def registered_rules() -> tuple[Rule, ...]:
    """All registered rules, sorted by id."""
    _ensure_builtins()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def iter_source_files(paths: Iterable[str]) -> Iterator[tuple[str, str]]:
    """Yield ``(abs_path, reported_path)`` for every ``.py`` under ``paths``.

    Files are yielded in sorted order so reports and baselines are
    deterministic across filesystems.
    """
    for root in paths:
        root = os.fspath(root)
        if os.path.isfile(root):
            yield os.path.abspath(root), root.replace(os.sep, "/")
            continue
        if not os.path.isdir(root):
            raise LintError(f"{root}: no such file or directory")
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                yield os.path.abspath(full), os.path.relpath(full).replace(os.sep, "/")


def _comment_starts(text: str) -> set[tuple[int, int]] | None:
    """``(line, col)`` of every comment token, or None if untokenizable."""
    try:
        return {
            (tok.start[0], tok.start[1])
            for tok in tokenize.generate_tokens(io.StringIO(text).readline)
            if tok.type == tokenize.COMMENT
        }
    except (tokenize.TokenError, IndentationError):
        return None


def run_lint(
    paths: Iterable[str],
    select: Iterable[str] | None = None,
    check_pragmas: bool = True,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` with the selected rules.

    ``select`` narrows to specific rule ids (validated against the
    registry); the default runs every registered rule. Per-module rules
    see one :class:`Module` at a time; whole-program rules (those
    overriding :meth:`Rule.check_project`) share one
    :class:`reprolint.project.Project` built from every parsed module.

    A ``# reprolint: disable=RULE`` pragma that suppresses zero
    findings is itself reported (as ``REPRO000``) so stale suppressions
    cannot accumulate silently; ``check_pragmas=False`` opts out. A
    pragma naming a rule that did not run this invocation (``--select``
    narrowing) is never reported dead, and ``disable=all`` pragmas are
    only audited on full runs.

    Returns findings sorted by location; inline pragmas are already
    applied, baselines are the caller's concern (see
    :func:`reprolint.baseline.apply_baseline`).
    """
    if select is not None:
        rules = tuple(get_rule(rule_id) for rule_id in select)
    else:
        rules = registered_rules()
    module_rules = [rule for rule in rules if not rule.is_project_rule]
    project_rules = [rule for rule in rules if rule.is_project_rule]

    findings: list[Finding] = []
    modules: dict[str, Module] = {}
    for path, rel_path in iter_source_files(paths):
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        try:
            module = Module(path, rel_path, text)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=rel_path.replace(os.sep, "/"),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule_id="REPRO000",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        modules[module.rel_path] = module
        for rule in module_rules:
            if rule.applies_to(module.rel_path):
                findings.extend(rule.check(module))
    if project_rules:
        from reprolint.project import Project

        project = Project(modules.values())
        for rule in project_rules:
            findings.extend(rule.check_project(project))

    # Apply inline pragmas, accounting which ones actually suppressed
    # something so dead pragmas can be reported.
    used: set[tuple[str, int, str]] = set()
    kept: list[Finding] = []
    for finding in findings:
        module = modules.get(finding.path)
        disabled = (
            module.disabled_on_line(finding.line) if module is not None else frozenset()
        )
        if finding.rule_id in disabled:
            used.add((finding.path, finding.line, finding.rule_id))
        elif "all" in disabled:
            used.add((finding.path, finding.line, "all"))
        else:
            kept.append(finding)
    if check_pragmas:
        ran_ids = {rule.rule_id for rule in rules}
        for rel_path, module in modules.items():
            comment_starts = _comment_starts(module.text)
            if comment_starts is None:
                continue
            for line_no, line in enumerate(module.lines, start=1):
                match = _PRAGMA.search(line)
                if not match:
                    continue
                # Only audit pragmas that *are* a comment — a docstring
                # or doc comment quoting the pragma syntax is prose
                # about a pragma, not a stale one.
                if (line_no, match.start()) not in comment_starts:
                    continue
                for token in match.group(1).split(","):
                    token = token.strip()
                    if not token:
                        continue
                    if token == "all":
                        if select is not None:
                            continue  # a narrowed run proves nothing
                    elif token not in ran_ids:
                        continue  # that rule did not run
                    if (rel_path, line_no, token) not in used:
                        kept.append(
                            Finding(
                                path=rel_path,
                                line=line_no,
                                col=match.start() + 1,
                                rule_id="REPRO000",
                                message=(
                                    f"dead pragma: disable={token} suppresses "
                                    "no finding on this line — remove it (or "
                                    "fix the rule id)"
                                ),
                            )
                        )
    return sorted(kept)
