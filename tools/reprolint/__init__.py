"""reprolint — AST-based invariant linter for the repro simulation core.

Static analysis tuned to this repository: every rule encodes an
invariant that an earlier PR established the hard way (a real bug or a
review catch) and that nothing else enforces mechanically. See
:mod:`reprolint.rules` for the built-ins and README's "Static analysis
& invariants" section for the user-facing index.

Usage::

    python -m reprolint [paths...]      # lint (default: src/repro)
    repro lint --list-rules             # same tool via the repro CLI

Extending::

    from reprolint import Rule, register_rule

    class MyRule(Rule):
        rule_id = "REPRO042"
        title = "..."
        scope = ("mymodule/*.py",)
        def check(self, module):
            ...yield findings...

    register_rule(MyRule())
"""

from reprolint.baseline import apply_baseline, load_baseline, save_baseline
from reprolint.framework import (
    Finding,
    LintError,
    Module,
    Rule,
    get_rule,
    register_rule,
    registered_rules,
    rule_ids,
    run_lint,
    unregister_rule,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Finding",
    "LintError",
    "Module",
    "Rule",
    "apply_baseline",
    "get_rule",
    "load_baseline",
    "register_rule",
    "registered_rules",
    "rule_ids",
    "run_lint",
    "save_baseline",
    "unregister_rule",
]
