"""Whole-program model: modules, imports, symbols, and a call graph.

Per-module AST matching (PR 6) cannot see the bug classes the campaign
service introduced: whether a module-global sqlite connection is
*reachable* from a pool worker, or which methods run on the heartbeat
thread, are properties of the program, not of any one file. This module
builds the shared model every whole-program rule consumes:

:class:`ModuleSymbols`
    One module's symbol table — top-level functions, classes (with
    methods and base names), module globals, imports and ``__all__``.
:class:`Project`
    The module set plus the derived structure: an import graph (local
    names resolved to project modules by dotted-suffix matching, so the
    model works from an uninstalled checkout and on test fixtures
    alike), a conservative call graph, the concurrency *entry points*
    (functions handed to ``ProcessPoolExecutor.submit/map`` or shipped
    as its ``initializer=``, ``threading.Thread(target=...)`` targets,
    and ``do_*`` methods of HTTP handler classes), and reachability
    queries over all of it.

Call resolution is deliberately conservative in the reporting
direction: direct calls resolve through local symbols and imports,
``self.method()`` resolves through the class and its project-local
bases, ``obj.method()`` resolves through annotations and assignment
chains when possible and falls back to a *unique* project-wide method
name match — a method name defined by several classes stays unresolved
rather than fanning out into noise.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from reprolint.dataflow import FunctionDataflow, assigned_names
from reprolint.framework import Module


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, ``""`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class FunctionInfo:
    """One function or method definition in the project."""

    def __init__(
        self,
        module: Module,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: "ClassInfo | None" = None,
    ) -> None:
        self.module = module
        self.node = node
        self.cls = cls
        self.name = node.name
        self.qualname = f"{cls.name}.{node.name}" if cls is not None else node.name
        #: Stable identity usable as a dict/set key.
        self.key = (module.rel_path, self.qualname)
        self._dataflow: FunctionDataflow | None = None

    @property
    def dataflow(self) -> FunctionDataflow:
        if self._dataflow is None:
            self._dataflow = FunctionDataflow(self.node)
        return self._dataflow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.module.rel_path}::{self.qualname})"


class ClassInfo:
    """One class definition: methods, base names, lock-like attributes."""

    def __init__(self, module: Module, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.name = node.name
        self.bases = [dotted_name(base) for base in node.bases if dotted_name(base)]
        self.methods: dict[str, FunctionInfo] = {}
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[child.name] = FunctionInfo(module, child, cls=self)


class ModuleSymbols:
    """Symbol table of one module: defs, classes, globals, imports."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Module-level ``name = <expr>`` assignments (last one wins).
        self.globals: dict[str, ast.expr] = {}
        self.global_nodes: dict[str, ast.stmt] = {}
        #: local name -> (source module dotted path, original name or
        #: None for a plain ``import x`` module binding).
        self.imports: dict[str, tuple[str, str | None]] = {}
        self.all_names: list[str] | None = None
        self.all_node: ast.stmt | None = None
        self.has_module_getattr = False
        self._collect()

    def _collect(self) -> None:
        package_parts = self.module.rel_path.split("/")[:-1]
        # Walk module-level statements *including* conditional blocks
        # (``try: import numba``, ``if TYPE_CHECKING:`` ...) — names
        # bound there are module attributes too — but never descend
        # into function or class bodies.
        worklist: list[ast.stmt] = list(self.module.tree.body)
        while worklist:
            node = worklist.pop(0)
            if isinstance(node, (ast.If, ast.While, ast.For)):
                worklist.extend(node.body)
                worklist.extend(node.orelse)
                continue
            if isinstance(node, ast.Try):
                worklist.extend(node.body)
                for handler in node.handlers:
                    worklist.extend(handler.body)
                worklist.extend(node.orelse)
                worklist.extend(node.finalbody)
                continue
            if isinstance(node, (ast.With, ast.AsyncWith)):
                worklist.extend(node.body)
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(self.module, node)
                if node.name == "__getattr__":
                    self.has_module_getattr = True
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = ClassInfo(self.module, node)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (alias.name, None)
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if node.level:
                    base = package_parts[: len(package_parts) - node.level + 1]
                    source = ".".join([*base, source] if source else base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = (source, alias.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                for target in targets:
                    for name in assigned_names(target):
                        if value is not None:
                            self.globals[name] = value
                            self.global_nodes[name] = node
                        if name == "__all__" and isinstance(
                            value, (ast.List, ast.Tuple)
                        ):
                            self.all_names = [
                                elt.value
                                for elt in value.elts
                                if isinstance(elt, ast.Constant)
                                and isinstance(elt.value, str)
                            ]
                            self.all_node = node

    def defines(self, name: str) -> bool:
        """Whether ``name`` is bound at module level (any way at all)."""
        return (
            name in self.functions
            or name in self.classes
            or name in self.globals
            or name in self.imports
            or self.has_module_getattr
        )

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()
        for cls in self.classes.values():
            yield from cls.methods.values()


class EntryPoint:
    """One function the program hands to a thread or worker process."""

    def __init__(self, function: FunctionInfo, kind: str, site: ast.AST) -> None:
        self.function = function
        #: ``"process"`` (pool worker / initializer — fork-sensitive)
        #: or ``"thread"`` (Thread target, HTTP handler method).
        self.kind = kind
        self.site = site


#: Base-class name suffixes that mark a class's ``do_*`` methods as
#: per-request thread entry points (ThreadingHTTPServer handlers).
_HANDLER_BASE_SUFFIXES = ("BaseHTTPRequestHandler", "SimpleHTTPRequestHandler")


class Project:
    """The whole-program model shared by every ``check_project`` rule."""

    def __init__(self, modules: Iterable[Module]) -> None:
        self.modules: list[Module] = list(modules)
        self.symbols: dict[str, ModuleSymbols] = {
            module.rel_path: ModuleSymbols(module) for module in self.modules
        }
        #: dotted suffix -> rel_paths claiming it (ambiguity preserved).
        self._dotted: dict[str, list[str]] = {}
        for rel_path in sorted(self.symbols):
            parts = rel_path[: -len(".py")].split("/")
            if parts[-1] == "__init__":
                parts = parts[:-1]
            for start in range(len(parts)):
                self._dotted.setdefault(".".join(parts[start:]), []).append(rel_path)
        self._callees: dict[tuple[str, str], list[FunctionInfo]] = {}
        self._callers: dict[tuple[str, str], list[FunctionInfo]] | None = None
        self._entry_points: list[EntryPoint] | None = None
        self._method_index: dict[str, list[FunctionInfo]] | None = None

    # -- module / symbol resolution ------------------------------------
    def module_symbols(self, rel_path: str) -> ModuleSymbols | None:
        return self.symbols.get(rel_path)

    def resolve_module(self, dotted: str) -> ModuleSymbols | None:
        """Project module for a dotted import path (suffix matching).

        Tries the longest suffix first, so ``repro.campaign.store``
        prefers ``src/repro/campaign/store.py`` over any other
        ``store.py``; an ambiguous suffix resolves to nothing.
        """
        parts = dotted.split(".")
        for start in range(len(parts)):
            candidates = self._dotted.get(".".join(parts[start:]))
            if candidates and len(candidates) == 1:
                return self.symbols[candidates[0]]
            if candidates:
                return None
        return None

    def imported_function(
        self, symbols: ModuleSymbols, local_name: str
    ) -> FunctionInfo | None:
        """The project function a ``from X import name`` binding names."""
        entry = symbols.imports.get(local_name)
        if entry is None:
            return None
        source_dotted, original = entry
        source = self.resolve_module(source_dotted)
        if source is None:
            return None
        if original is None:
            return None
        if original in source.functions:
            return source.functions[original]
        cls = source.classes.get(original)
        if cls is not None:
            return cls.methods.get("__init__")
        # Re-export chains (package __init__) — follow one more hop.
        nested = source.imports.get(original)
        if nested is not None:
            return self.imported_function(source, original)
        return None

    def _method_lookup(self, name: str) -> list[FunctionInfo]:
        if self._method_index is None:
            self._method_index = {}
            for symbols in self.symbols.values():
                for cls in symbols.classes.values():
                    for method in cls.methods.values():
                        self._method_index.setdefault(method.name, []).append(method)
        return self._method_index.get(name, [])

    def _class_for_annotation(
        self, symbols: ModuleSymbols, annotation: ast.expr | None
    ) -> ClassInfo | None:
        if annotation is None:
            return None
        name = dotted_name(annotation)
        if not name:
            # string annotations ("CampaignStore") and subscripts
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                name = annotation.value.strip("'\"").split("[")[0]
            else:
                return None
        return self._resolve_class_name(symbols, name)

    def _resolve_class_name(
        self, symbols: ModuleSymbols, name: str
    ) -> ClassInfo | None:
        parts = name.split(".")
        head, tail = parts[0], parts[-1]
        if name in symbols.classes:
            return symbols.classes[name]
        if head in symbols.imports:
            source_dotted, original = symbols.imports[head]
            if original is None:
                # ``import pkg.mod`` + ``pkg.mod.Class``: the module
                # path is everything but the final class name.
                middle = ".".join(parts[1:-1])
                source = self.resolve_module(
                    f"{source_dotted}.{middle}" if middle else source_dotted
                )
                if source is None:
                    source = self.resolve_module(source_dotted)
                if source is not None:
                    return source.classes.get(tail)
            else:
                source = self.resolve_module(source_dotted)
                if source is not None and original in source.classes:
                    return source.classes[original]
        return None

    def class_bases(self, cls: ClassInfo) -> list[ClassInfo]:
        """Project-local base classes of ``cls`` (resolved by name)."""
        symbols = self.symbols[cls.module.rel_path]
        bases: list[ClassInfo] = []
        for base in cls.bases:
            resolved = self._resolve_class_name(symbols, base)
            if resolved is not None:
                bases.append(resolved)
        return bases

    def _class_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            if name in current.methods:
                return current.methods[name]
            queue.extend(self.class_bases(current))
        return None

    # -- call graph -----------------------------------------------------
    def resolve_call(
        self, call: ast.Call, scope: FunctionInfo
    ) -> list[FunctionInfo]:
        """Project functions a call expression may invoke (conservative)."""
        return self._resolve_callable(call.func, scope)

    def _resolve_callable(
        self, func: ast.expr, scope: FunctionInfo
    ) -> list[FunctionInfo]:
        symbols = self.symbols[scope.module.rel_path]
        if isinstance(func, ast.Name):
            name = func.id
            if name in symbols.functions:
                return [symbols.functions[name]]
            if name in symbols.classes:
                init = symbols.classes[name].methods.get("__init__")
                return [init] if init is not None else []
            imported = self.imported_function(symbols, name)
            if imported is not None:
                return [imported]
            # A local binding to something resolvable (aliasing).
            for origin in scope.dataflow.bindings.get(name, []):
                if isinstance(origin, (ast.Name, ast.Attribute)):
                    resolved = self._resolve_callable(origin, scope)
                    if resolved:
                        return resolved
            return []
        if isinstance(func, ast.Attribute):
            attr = func.attr
            value = func.value
            # self.method() — the class and its project-local bases.
            if isinstance(value, ast.Name) and value.id == "self" and scope.cls:
                method = self._class_method(scope.cls, attr)
                return [method] if method is not None else []
            # module.func() through an ``import module`` binding.
            value_dotted = dotted_name(value)
            if value_dotted:
                head = value_dotted.split(".")[0]
                if head in symbols.imports and symbols.imports[head][1] is None:
                    source = self.resolve_module(
                        symbols.imports[head][0]
                        + value_dotted[len(head):].replace("/", ".")
                    )
                    if source is None:
                        source = self.resolve_module(symbols.imports[head][0])
                    if source is not None:
                        if attr in source.functions:
                            return [source.functions[attr]]
                        if attr in source.classes:
                            init = source.classes[attr].methods.get("__init__")
                            return [init] if init is not None else []
            # obj.method() — annotation, then assignment chain, then a
            # *unique* project-wide method-name match.
            cls = self._infer_class(value, scope)
            if cls is not None:
                method = self._class_method(cls, attr)
                return [method] if method is not None else []
            unique = self._method_lookup(attr)
            if len(unique) == 1:
                return [unique[0]]
            return []
        return []

    def _infer_class(self, value: ast.expr, scope: FunctionInfo) -> ClassInfo | None:
        symbols = self.symbols[scope.module.rel_path]
        if isinstance(value, ast.Name):
            # Parameter annotation.
            args = scope.node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.arg == value.id:
                    found = self._class_for_annotation(symbols, arg.annotation)
                    if found is not None:
                        return found
            # Assignment chain to a constructor call.
            for origin in scope.dataflow.origins(value):
                if isinstance(origin, ast.Call):
                    constructed = self._resolve_class_of_call(origin, scope)
                    if constructed is not None:
                        return constructed
        elif isinstance(value, ast.Call):
            return self._resolve_class_of_call(value, scope)
        return None

    def _resolve_class_of_call(
        self, call: ast.Call, scope: FunctionInfo
    ) -> ClassInfo | None:
        name = dotted_name(call.func)
        if not name:
            return None
        return self._resolve_class_name(self.symbols[scope.module.rel_path], name)

    def callees(self, function: FunctionInfo) -> list[FunctionInfo]:
        """Every project function ``function`` may call (memoized)."""
        cached = self._callees.get(function.key)
        if cached is not None:
            return cached
        found: dict[tuple[str, str], FunctionInfo] = {}
        for node in ast.walk(function.node):
            if isinstance(node, ast.Call):
                for callee in self.resolve_call(node, function):
                    found[callee.key] = callee
                # Functions passed as values (callbacks, pool tasks)
                # are conservatively treated as called.
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    for target in self._function_value(arg, function):
                        found[target.key] = target
        result = list(found.values())
        self._callees[function.key] = result
        return result

    def _function_value(
        self, expr: ast.expr, scope: FunctionInfo
    ) -> list[FunctionInfo]:
        """Project functions an expression evaluates to (not calls)."""
        if isinstance(expr, (ast.Name, ast.Attribute)):
            resolved = self._resolve_callable(expr, scope)
            return [f for f in resolved if f.name != "__init__"]
        return []

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for symbols in self.symbols.values():
            yield from symbols.iter_functions()

    def callers(self, function: FunctionInfo) -> list[FunctionInfo]:
        """Reverse call-graph edges (built once, on first use)."""
        if self._callers is None:
            self._callers = {}
            for caller in self.iter_functions():
                for callee in self.callees(caller):
                    self._callers.setdefault(callee.key, []).append(caller)
        return self._callers.get(function.key, [])

    # -- concurrency entry points ----------------------------------------
    def entry_points(self) -> list[EntryPoint]:
        """Thread targets, pool tasks/initializers, handler methods."""
        if self._entry_points is not None:
            return self._entry_points
        entries: list[EntryPoint] = []
        for function in self.iter_functions():
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                tail = name.rsplit(".", 1)[-1]
                if tail == "Thread":
                    target = self._keyword(node, "target")
                    if target is not None:
                        for resolved in self._resolve_value(target, function):
                            entries.append(EntryPoint(resolved, "thread", node))
                elif tail in ("ProcessPoolExecutor", "ThreadPoolExecutor"):
                    initializer = self._keyword(node, "initializer")
                    kind = "process" if tail == "ProcessPoolExecutor" else "thread"
                    if initializer is not None:
                        for resolved in self._resolve_value(initializer, function):
                            entries.append(EntryPoint(resolved, kind, node))
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("submit", "map")
                    and node.args
                ):
                    kind = self._pool_kind(node.func.value, function)
                    if kind is not None:
                        for resolved in self._resolve_value(node.args[0], function):
                            entries.append(EntryPoint(resolved, kind, node))
        # do_* methods of HTTP request handler classes run per request
        # on server threads.
        for symbols in self.symbols.values():
            for cls in symbols.classes.values():
                if not self._is_handler_class(cls):
                    continue
                for method in cls.methods.values():
                    if method.name.startswith("do_"):
                        entries.append(EntryPoint(method, "thread", cls.node))
        self._entry_points = entries
        return entries

    def _is_handler_class(self, cls: ClassInfo, _depth: int = 0) -> bool:
        if any(
            base.rsplit(".", 1)[-1] in _HANDLER_BASE_SUFFIXES for base in cls.bases
        ):
            return True
        if _depth >= 4:
            return False
        return any(
            self._is_handler_class(base, _depth + 1)
            for base in self.class_bases(cls)
        )

    @staticmethod
    def _keyword(call: ast.Call, name: str) -> ast.expr | None:
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _resolve_value(
        self, expr: ast.expr, scope: FunctionInfo
    ) -> list[FunctionInfo]:
        """Functions an expression names (entry-point targets)."""
        if isinstance(expr, (ast.Name, ast.Attribute)):
            resolved = self._resolve_callable(expr, scope)
            if resolved:
                return resolved
            # ``Thread(target=self._loop)``: _resolve_callable already
            # covers self.*; a bare name bound by assignment falls
            # through to the dataflow chain.
            if isinstance(expr, ast.Name):
                for origin in scope.dataflow.origins(expr):
                    if origin is not expr and isinstance(
                        origin, (ast.Name, ast.Attribute)
                    ):
                        deeper = self._resolve_callable(origin, scope)
                        if deeper:
                            return deeper
        return []

    def _pool_kind(self, receiver: ast.expr, scope: FunctionInfo) -> str | None:
        """``"process"``/``"thread"`` for a ``.submit``/``.map`` receiver.

        Unknown receivers count as process pools: for fork-safety a
        false "process" is the conservative direction, and plain
        ``obj.map``/``obj.submit`` calls on non-executors do not resolve
        their first argument to a project function anyway in the
        overwhelmingly common case.
        """
        origins = (
            scope.dataflow.origins(receiver)
            if isinstance(receiver, ast.Name)
            else [receiver]
        )
        for origin in origins:
            if isinstance(origin, ast.Call):
                tail = dotted_name(origin.func).rsplit(".", 1)[-1]
                if tail == "ProcessPoolExecutor":
                    return "process"
                if tail == "ThreadPoolExecutor":
                    return "thread"
        return "process"

    # -- reachability -----------------------------------------------------
    def reachable_from(
        self, roots: Iterable[FunctionInfo]
    ) -> set[tuple[str, str]]:
        """Keys of every function reachable from ``roots`` (inclusive)."""
        seen: set[tuple[str, str]] = set()
        queue = list(roots)
        while queue:
            function = queue.pop()
            if function.key in seen:
                continue
            seen.add(function.key)
            queue.extend(self.callees(function))
        return seen

    def service_reachable(self, kinds: tuple[str, ...] = ("process", "thread")) -> set[tuple[str, str]]:
        """Functions reachable from any entry point of the given kinds."""
        roots = [e.function for e in self.entry_points() if e.kind in kinds]
        return self.reachable_from(roots)

    def global_readers(self, rel_path: str, name: str) -> list[FunctionInfo]:
        """Functions that may read module global ``name`` of ``rel_path``.

        Covers same-module functions referencing the bare name and
        other modules' functions referencing a ``from``-imported alias
        of it. Conservative: any ``Name`` occurrence counts as a read.
        """
        readers: list[FunctionInfo] = []
        owner = self.symbols.get(rel_path)
        if owner is None:
            return readers
        for function in owner.iter_functions():
            if any(
                isinstance(node, ast.Name) and node.id == name
                for node in ast.walk(function.node)
            ):
                readers.append(function)
        for other_path, symbols in self.symbols.items():
            if other_path == rel_path:
                continue
            aliases = [
                local
                for local, (source, original) in symbols.imports.items()
                if original == name and self.resolve_module(source) is owner
            ]
            if not aliases:
                continue
            for function in symbols.iter_functions():
                if any(
                    isinstance(node, ast.Name) and node.id in aliases
                    for node in ast.walk(function.node)
                ):
                    readers.append(function)
        return readers
