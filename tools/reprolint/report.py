"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from reprolint.framework import Finding, registered_rules


def render_text(findings: list[Finding], suppressed: int = 0) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        breakdown = ", ".join(f"{rule} x{n}" for rule, n in sorted(by_rule.items()))
        lines.append(f"reprolint: {len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("reprolint: clean")
    if suppressed:
        lines.append(f"reprolint: {suppressed} baselined finding(s) suppressed")
    return "\n".join(lines)


def render_json(findings: list[Finding], suppressed: int = 0) -> str:
    """Stable JSON document (sorted keys) for tooling and CI artifacts."""
    payload = {
        "version": 1,
        "count": len(findings),
        "suppressed": suppressed,
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def render_github(findings: list[Finding], suppressed: int = 0) -> str:
    """GitHub Actions workflow commands: one ``::error`` per finding.

    Emitted to stdout during a workflow run, these annotate the PR diff
    at the exact file/line. Messages are escaped per the workflow-
    command rules (%, CR and LF are data, not syntax).
    """
    del suppressed  # annotations cover fresh findings only

    def escape(value: str) -> str:
        return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")

    return "\n".join(
        f"::error file={escape(f.path)},line={f.line},col={f.col},"
        f"title={escape(f.rule_id)}::{escape(f.message)}"
        for f in findings
    )


def render_sarif(findings: list[Finding], suppressed: int = 0) -> str:
    """SARIF 2.1.0 document for GitHub code-scanning upload.

    Only rules that actually fired are described in the driver (the
    viewer needs ids it can resolve; the full catalog lives in
    ``--list-rules``).
    """
    del suppressed
    by_id = {rule.rule_id: rule for rule in registered_rules()}
    fired = sorted({finding.rule_id for finding in findings})
    sarif_rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": by_id[rule_id].title if rule_id in by_id else rule_id
            },
        }
        for rule_id in fired
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": sarif_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=1, sort_keys=True)


def render_rules() -> str:
    """The ``--list-rules`` table: id, scope, invariant, rationale."""
    lines = []
    for rule in registered_rules():
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"    scope: {', '.join(rule.scope)}")
        if rule.rationale:
            lines.append(f"    why:   {rule.rationale}")
    return "\n".join(lines)
