"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from reprolint.framework import Finding, registered_rules


def render_text(findings: list[Finding], suppressed: int = 0) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        breakdown = ", ".join(f"{rule} x{n}" for rule, n in sorted(by_rule.items()))
        lines.append(f"reprolint: {len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("reprolint: clean")
    if suppressed:
        lines.append(f"reprolint: {suppressed} baselined finding(s) suppressed")
    return "\n".join(lines)


def render_json(findings: list[Finding], suppressed: int = 0) -> str:
    """Stable JSON document (sorted keys) for tooling and CI artifacts."""
    payload = {
        "version": 1,
        "count": len(findings),
        "suppressed": suppressed,
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def render_rules() -> str:
    """The ``--list-rules`` table: id, scope, invariant, rationale."""
    lines = []
    for rule in registered_rules():
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"    scope: {', '.join(rule.scope)}")
        if rule.rationale:
            lines.append(f"    why:   {rule.rationale}")
    return "\n".join(lines)
