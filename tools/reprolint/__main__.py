"""``python -m reprolint`` entry point."""

import sys

from reprolint.cli import main

sys.exit(main())
