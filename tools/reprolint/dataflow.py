"""Intra-function value tracking for whole-program rules.

Deliberately small: the whole-program rules need to answer exactly two
kinds of question about one function body —

* *assignment chains*: ``handle = open(p); h = handle; return h``
  reaches ``return`` with the value produced by ``open(p)``;
* *wrapper returns*: ``def connection(): return self._connect()``
  returns whatever ``self._connect`` returns, so a rule following a
  value across functions asks :class:`FunctionDataflow` for the calls a
  function may return and resolves the callees through the project's
  call graph.

The tracking is conservative in the lint direction: a name may carry
*any* of the values ever assigned to it in the function (no path
sensitivity, no kill analysis beyond same-name rebinding inside the
map), so a rule asking "may this function return a connection?" gets
``True`` whenever any assignment chain allows it.
"""

from __future__ import annotations

import ast
from typing import Iterator


def assigned_names(target: ast.expr) -> Iterator[str]:
    """Plain names bound by one assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from assigned_names(elt)


class FunctionDataflow:
    """Assignment chains and returned values of one function body.

    Only the function's own statements are visited — nested ``def``/
    ``lambda`` bodies are opaque (their assignments do not leak into
    the enclosing function's names).
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        #: name -> every expression ever assigned to it in this body.
        self.bindings: dict[str, list[ast.expr]] = {}
        self.returns: list[ast.expr] = []
        for node in self._own_walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for name in assigned_names(target):
                        self.bindings.setdefault(name, []).append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                for name in assigned_names(node.target):
                    self.bindings.setdefault(name, []).append(node.value)
            elif isinstance(node, ast.Return) and node.value is not None:
                self.returns.append(node.value)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for name in assigned_names(item.optional_vars):
                            self.bindings.setdefault(name, []).append(
                                item.context_expr
                            )

    @staticmethod
    def _own_walk(func: ast.AST) -> Iterator[ast.AST]:
        """``ast.walk`` stopping at nested function/class boundaries."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def origins(self, expr: ast.expr, _depth: int = 0) -> list[ast.expr]:
        """The producing expressions an expression may evaluate to.

        Follows chains of plain-name assignments (bounded, so cyclic
        rebindings like ``a = b; b = a`` terminate); anything that is
        not a name resolves to itself.
        """
        if isinstance(expr, ast.Name) and _depth < 8:
            sources = self.bindings.get(expr.id, [])
            resolved: list[ast.expr] = []
            for source in sources:
                resolved.extend(self.origins(source, _depth + 1))
            return resolved
        return [expr]

    def returned_origins(self) -> list[ast.expr]:
        """Producing expressions reachable at any ``return`` statement."""
        origins: list[ast.expr] = []
        for value in self.returns:
            origins.extend(self.origins(value))
        return origins

    def returned_calls(self) -> list[ast.Call]:
        """Call expressions whose results this function may return."""
        return [o for o in self.returned_origins() if isinstance(o, ast.Call)]
