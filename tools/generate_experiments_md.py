#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from full-scale runs.

Runs every table at the full settings (18 benchmarks, 1500-window
traces) and writes the paper-vs-measured record. Takes a few minutes.

Run:  python tools/generate_experiments_md.py
"""

from __future__ import annotations

import sys
import time

from repro.experiments import paper_data
from repro.experiments.compare import (
    compare_table1,
    compare_table2,
    compare_table3,
    compare_table4,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.suite import ExperimentSettings
from repro.experiments.tables import headline, table1, table2, table3, table4

OUTPUT = "EXPERIMENTS.md"

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Reproduction record for *Partitioned Cache Architectures for Reduced
NBTI-Induced Aging* (Calimera et al., DATE 2011). All numbers below are
produced by `tools/generate_experiments_md.py` using the full settings
(18 synthetic benchmarks calibrated to the paper's Table I, 1500-window
traces, 16 re-indexing updates). Regenerate any single table from the
CLI, e.g. `python -m repro table2 --compare`.

**Reading the deltas.** The reproduction's substrate is a synthetic
workload model plus analytical 45nm-like energy/aging models calibrated
at three anchor points (Table I idleness, the 2.93-year cell, the
lifetime/idleness relation). Exact per-benchmark matches are expected
for idleness-driven quantities; energy percentages match at 8/16kB and
are compressed at 32kB (see "Known divergences").

"""

KNOWN_DIVERGENCES = """\
## Known divergences

1. **32kB energy savings are compressed (≈49% vs the paper's 55.5%).**
   In our model the leakage saving is bounded by the measured sleep-time
   fraction (≈0.42-0.47) times the drowsy ratio, and the dynamic saving
   by the banking ratio; with both bounds active the 32kB configuration
   cannot reach 55.5% while the lifetime-vs-idleness anchor holds. The
   paper's own lifetime data is consistent with the sleep fractions we
   measure, so we keep the aging calibration and accept the compressed
   top end of the energy axis. The *shape* — savings strictly growing
   with cache size, and (16kB, 32B) ≈ (8kB, 16B) — reproduces.
2. **Idleness is size-independent by construction** (the workload model
   is defined over normalized index space), while the paper measures a
   mild upward drift with cache size (42→47% at M=4, 58→68% at M=8).
   Consequently our Table IV lifetimes are flat across sizes at fixed M
   where the paper's grow slightly; the divergence peaks at 32kB/M=8
   (5.31y vs 5.98y). The paper itself concludes "the cache size has a
   limited impact on the lifetime of a power managed cache".
3. **Scrambling at few updates.** With the simulation's compressed
   update schedules (16-64 updates) scrambling visibly trails probing on
   extremely unbalanced benchmarks; the paper's "de facto identical"
   claim holds asymptotically and our analysis bench measures the
   1/sqrt(N) convergence explicitly.
"""


EXTENSIONS = """\
## Extension experiments (beyond the paper)

Documented in DESIGN.md (systems 12-16) and exercised by
`benchmarks/bench_finegrain.py` and `benchmarks/bench_extensions.py`:

* **X1 — granularity**: the fine-grain dynamic indexing of the paper's
  reference [7] (per-line sleep + full-index remap) reaches ~10.8y on
  the most unbalanced benchmark vs ~4.7y for the paper's 4-bank scheme
  and ~6.8y at M=16 — the lifetime upper bound the paper positions
  itself against — while saving ~7 points *less* energy than M=4
  banking (no dynamic-energy reduction) and requiring array-internal
  sleep devices.
* **X2 — process variation** (10 mV pull-up sigma): the weakest-cell
  effect shrinks absolute lifetimes with array size, but idleness
  balancing keeps its relative benefit (it scales the whole
  distribution).
* **X3 — self-heating**: activity-driven bank temperatures compound the
  idleness imbalance; re-indexing balances both, widening its advantage
  over the static partition.
* **X4 — content flipping** ([11]/[15]): gains vanish for balanced
  content (flip gain 1.0 at p0 = 0.5), confirming the paper's choice of
  the idleness axis for caches.
"""


def section(title: str, body: str) -> str:
    return f"## {title}\n\n```text\n{body}\n```\n\n"


def main() -> int:
    t0 = time.time()
    runner = ExperimentRunner(settings=ExperimentSettings())
    parts = [PREAMBLE]

    t1 = table1(runner)
    cells, summary = compare_table1(t1)
    parts.append(section(
        "Table I — idleness distribution (4-bank, 16kB)",
        t1.render()
        + f"\n\npaper avg: {paper_data.TABLE1_AVERAGE:.2f}%"
        + f"\ncells={summary['count']} mean|Δ|={summary['mean_abs_delta']:.2f} "
        + f"max|Δ|={summary['max_abs_delta']:.2f} (percentage points)",
    ))
    print(f"table1 done ({time.time() - t0:.0f}s)")

    t2 = table2(runner)
    cells, summary = compare_table2(t2)
    average = t2.row_for("Average")
    paper_avg = paper_data.TABLE2_AVERAGE
    recap = (
        f"Average row, measured vs paper:\n"
        f"  Esav  8kB: {average[1]:5.1f}% vs {paper_avg[8192][0]:5.1f}%   "
        f"LT0: {average[2]:.2f} vs {paper_avg[8192][1]:.2f}   LT: {average[3]:.2f} vs {paper_avg[8192][2]:.2f}\n"
        f"  Esav 16kB: {average[4]:5.1f}% vs {paper_avg[16384][0]:5.1f}%   "
        f"LT0: {average[5]:.2f} vs {paper_avg[16384][1]:.2f}   LT: {average[6]:.2f} vs {paper_avg[16384][2]:.2f}\n"
        f"  Esav 32kB: {average[7]:5.1f}% vs {paper_avg[32768][0]:5.1f}%   "
        f"LT0: {average[8]:.2f} vs {paper_avg[32768][1]:.2f}   LT: {average[9]:.2f} vs {paper_avg[32768][2]:.2f}"
    )
    parts.append(section(
        "Table II — energy savings and lifetime vs cache size",
        t2.render() + "\n\n" + recap
        + f"\ncells={summary['count']} mean|Δ|={summary['mean_abs_delta']:.2f} "
        + f"mean|rel|={summary['mean_abs_rel']:.1%}",
    ))
    print(f"table2 done ({time.time() - t0:.0f}s)")

    t3 = table3(runner)
    cells, summary = compare_table3(t3)
    parts.append(section(
        "Table III — energy savings and lifetime vs line size (16kB)",
        t3.render()
        + f"\n\npaper averages: LS16 {paper_data.TABLE3_AVERAGE[16]} / "
        + f"LS32 {paper_data.TABLE3_AVERAGE[32]}"
        + f"\ncells={summary['count']} mean|Δ|={summary['mean_abs_delta']:.2f} "
        + f"mean|rel|={summary['mean_abs_rel']:.1%}",
    ))
    print(f"table3 done ({time.time() - t0:.0f}s)")

    t4 = table4(runner)
    cells, summary = compare_table4(t4)
    paper_rows = "\n".join(
        f"  {size // 1024}kB paper: "
        + "  ".join(
            f"M{banks}: {paper_data.TABLE4[(size, banks)][0]:.0f}% / "
            f"{paper_data.TABLE4[(size, banks)][1]:.2f}y"
            for banks in (2, 4, 8)
        )
        for size in (8192, 16384, 32768)
    )
    parts.append(section(
        "Table IV — idleness and lifetime vs number of banks",
        t4.render() + "\n\n" + paper_rows
        + f"\ncells={summary['count']} mean|Δ|={summary['mean_abs_delta']:.2f} "
        + f"mean|rel|={summary['mean_abs_rel']:.1%}",
    ))
    print(f"table4 done ({time.time() - t0:.0f}s)")

    parts.append(section(
        "Headline claims (Sections I and V)",
        headline(runner).render()
        + "\n\npaper: ~9% from power management alone; 22%...2x with re-indexing",
    ))

    parts.append(KNOWN_DIVERGENCES)
    parts.append(EXTENSIONS)
    parts.append(
        f"\n*Generated in {time.time() - t0:.0f}s by "
        f"`tools/generate_experiments_md.py`.*\n"
    )

    with open(OUTPUT, "w", encoding="utf-8") as handle:
        handle.write("".join(parts))
    print(f"wrote {OUTPUT} in {time.time() - t0:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
