"""Guided-search benchmark: estimator-pruned vs exhaustive sweep.

Runs the same large design-space grid (banking x policy x breakeven)
two ways:

* **exhaustive** — ``search_sweep(..., "exhaustive")``: every grid
  point simulated, bit-identical to a plain ``sweep()``;
* **estimator-pruned** — the analytical model scores the whole grid,
  then only the per-objective top slice (plus the epsilon-front of the
  estimated Pareto frontier) is simulated.

Two claims are asserted before ``BENCH_search.json`` is written:

1. the pruned run simulates at most 25% of the grid, and
2. for every headline metric (hit rate, energy savings, lifetime) the
   best value found among the pruned run's *simulated* points equals
   the exhaustive best — the estimator never prunes away a true
   optimum. Values (not point identities) are compared because metrics
   such as hit rate tie across the breakeven axis.

Wall-clock for both paths is recorded but not asserted: on synthetic
traces the compiled breakeven-batched kernels make a simulation barely
more expensive than assembling an estimate, so the pruning payoff
shows up as simulations avoided (what matters once per-point cost is
dominated by real trace replay, storage round-trips or workers), not
as local wall-clock.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_search.py           # full 540-point grid
    PYTHONPATH=src python benchmarks/bench_search.py --tiny    # CI smoke grid

or through pytest (``test_pruned_search_finds_exhaustive_best`` runs
the tiny grid; the committed full-grid ``BENCH_search.json`` tracks
wall-clock and the simulated fraction at scale).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.aging.lut import LifetimeLUT
from repro.analysis.planner import SearchSpec
from repro.analysis.sweep import search_sweep
from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_search.json"

#: The metrics a campaign reports headline numbers for; the pruned
#: search must find the exhaustive best of every one of them.
HEADLINE_METRICS = ("hit_rate", "energy_savings", "lifetime_years")


def breakeven_ladder(count: int, lo: int = 5, hi: int = 50_000) -> list[int]:
    """``count`` distinct, roughly log-spaced breakeven values."""
    values: list[int] = []
    step = (hi / lo) ** (1.0 / (count - 1))
    current = float(lo)
    for _ in range(count):
        candidate = int(round(current))
        while candidate in values:
            candidate += 1
        values.append(candidate)
        current *= step
    return values


def make_grid(tiny: bool):
    """A 540-point grid (or a 24-point CI smoke grid)."""
    geometry = CacheGeometry(16 * 1024, 16)
    windows = 60 if tiny else 240
    trace = WorkloadGenerator(geometry, num_windows=windows).generate(
        profile_for("dijkstra")
    )
    horizon = trace.horizon
    axes = {
        "num_banks": [2, 4] if tiny else [2, 4, 8, 16],
        "policy": ["static", "probing"] if tiny else ["static", "probing", "scrambling"],
        "update_period_cycles": [horizon // 8]
        if tiny
        else [horizon // 4, horizon // 8, horizon // 16, horizon // 32, horizon // 64],
        "breakeven_override": breakeven_ladder(6 if tiny else 9),
    }
    base = ArchitectureConfig(
        geometry,
        num_banks=4,
        policy="probing",
        update_period_cycles=trace.horizon // 8,
    )
    return base, trace, axes


def run_bench(tiny: bool = False, output: Path = DEFAULT_OUTPUT) -> dict:
    base, trace, axes = make_grid(tiny)
    lut = LifetimeLUT.default()  # built outside the timed regions
    points = 1
    for values in axes.values():
        points *= len(values)
    # Front objectives are the default (energy_savings, lifetime_years):
    # hit rate ties across the whole breakeven axis, so using it as a
    # Pareto objective would keep every tied point alive. Its best
    # *value* still survives because the tied-best static configs also
    # top the energy/lifetime rankings — asserted below.
    search = SearchSpec(strategy="estimator-pruned")

    start = time.perf_counter()
    exhaustive = search_sweep(base, trace, axes, search=SearchSpec("exhaustive"), lut=lut)
    exhaustive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pruned = search_sweep(base, trace, axes, search=search, lut=lut)
    pruned_seconds = time.perf_counter() - start

    simulated = len(pruned.simulated.points)
    fraction = simulated / points
    assert len(exhaustive.simulated.points) == points
    if points >= 500:
        # The <= 25% pruning bound is a full-grid contract: on a smoke
        # grid the per-objective floor (at least one survivor each) and
        # the epsilon-front keep most of the handful of points alive.
        assert simulated <= 0.25 * points, (
            f"pruned search simulated {simulated}/{points} points (> 25%)"
        )
    best_found = {}
    for metric in HEADLINE_METRICS:
        true_best = exhaustive.simulated.best(metric).value(metric)
        pruned_best = pruned.simulated.best(metric).value(metric)
        best_found[metric] = pruned_best == true_best
        assert best_found[metric], (
            f"pruned search missed the exhaustive best for {metric}: "
            f"{pruned_best!r} != {true_best!r}"
        )

    payload = {
        "benchmark": "dijkstra",
        "points": points,
        "trace_accesses": len(trace),
        "trace_cycles": trace.horizon,
        "tiny": tiny,
        "strategy": "estimator-pruned",
        "objectives": list(search.objectives),
        "headline_metrics": list(HEADLINE_METRICS),
        "simulated": simulated,
        "estimated": len(pruned.estimates.points),
        "simulated_fraction": round(fraction, 4),
        "simulations_avoided": pruned.simulations_avoided,
        "exhaustive_seconds": round(exhaustive_seconds, 4),
        "pruned_seconds": round(pruned_seconds, 4),
        "best_found": best_found,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"{points}-point grid on {len(trace):,} accesses: exhaustive "
        f"{exhaustive_seconds:.2f}s, pruned {pruned_seconds:.2f}s, "
        f"{simulated}/{points} simulated ({fraction:.1%}), best survives "
        f"for {'/'.join(m for m, ok in best_found.items() if ok)} "
        f"(written to {output})"
    )
    return payload


def test_pruned_search_finds_exhaustive_best(tmp_path):
    """Pytest entry: tiny grid. The contracts pinned here are the
    simulated-fraction bound and best-value survival per headline
    metric; wall-clock speedup is tracked by the committed full-grid
    BENCH_search.json, not asserted in CI."""
    payload = run_bench(tiny=True, output=tmp_path / "BENCH_search.json")
    assert payload["simulated"] < payload["points"]
    assert all(payload["best_found"].values())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="CI smoke grid (24 points, short trace)"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="where to write the JSON"
    )
    args = parser.parse_args(argv)
    run_bench(tiny=args.tiny, output=args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
