"""Experiment E1 — regenerate Table I (idleness distribution, 4 banks).

Prints the reproduced table next to the paper's published values and
asserts the workload calibration holds: per-bank useful idleness within
a few points of Table I, and the suite average near 41.71%.
"""

from __future__ import annotations

from repro.experiments.compare import compare_table1, render_comparison
from repro.experiments.paper_data import TABLE1_AVERAGE
from repro.experiments.tables import table1


def test_table1_reproduction(benchmark, fresh_runner):
    """Time a cold regeneration of Table I, then check it against the paper."""
    result = benchmark.pedantic(
        lambda: table1(fresh_runner), rounds=1, iterations=1
    )
    print()
    print(result.render())
    cells, summary = compare_table1(result)
    print(render_comparison(cells[:8], summary, "Table I vs paper (first rows)"))

    assert summary["mean_abs_delta"] < 4.0, "idleness calibration drifted"
    assert summary["max_abs_delta"] < 10.0

    measured_average = float(result.rows[-1][5])
    assert abs(measured_average - TABLE1_AVERAGE) < 5.0


def test_table1_imbalance_motivation(warm_runner):
    """The motivating observation: idleness is wildly unbalanced — for
    several benchmarks the best bank is >20x idler than the worst."""
    result = table1(warm_runner)
    unbalanced = 0
    for row in result.rows[:-1]:
        values = [row[1 + b] for b in range(4)]
        if max(values) > 20 * max(min(values), 1e-9):
            unbalanced += 1
    assert unbalanced >= 1
