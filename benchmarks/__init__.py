"""Benchmark harness regenerating every table/figure of the paper."""
