"""Extension experiment — coarse vs fine granularity (the paper vs [7]).

The paper positions its banked architecture as "a coarse-grain
implementation of the scheme of [7]": line-granularity dynamic indexing
achieves optimal (uniform) per-line idleness but requires modifying the
SRAM array internals. This bench measures the actual trade-off on a
shared workload:

* **lifetime**: fine-grain >= coarse-grain (per-line sleep catches far
  more idleness), with re-indexing helping both;
* **energy**: coarse-grain banking wins on dynamic energy (smaller
  accessed arrays), fine-grain only on leakage;
* **uniformity**: fine-grain re-indexing drives the per-line idleness
  spread toward zero — the paper's "all cache lines have identical
  lifetime" property of [7].
"""

from __future__ import annotations

import pytest

from repro.aging.lut import LifetimeLUT
from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.simulator import simulate
from repro.finegrain import FineGrainConfig, FineGrainSimulator
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for


@pytest.fixture(scope="module")
def setup():
    geometry = CacheGeometry(16 * 1024, 16)
    trace = WorkloadGenerator(geometry, num_windows=500).generate(
        profile_for("adpcm.dec")
    )
    return geometry, trace, LifetimeLUT.default()


def test_granularity_comparison(benchmark, setup):
    geometry, trace, lut = setup

    def run_all():
        rows = []
        for label, banks in (("coarse M=4", 4), ("coarse M=8", 8), ("coarse M=16", 16)):
            config = ArchitectureConfig(
                geometry, num_banks=banks, policy="probing",
                update_period_cycles=trace.horizon // 16,
            )
            result = simulate(config, trace, lut)
            rows.append((label, result.lifetime_years, result.energy_savings))
        for label, policy in (("fine static [20]", "static"), ("fine probing [7]", "probing")):
            config = FineGrainConfig(
                geometry, policy=policy,
                update_period_cycles=trace.horizon // 32 if policy != "static" else None,
            )
            result = FineGrainSimulator(config, lut).run(trace)
            rows.append((label, result.lifetime_years, result.energy_savings))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(f"{'architecture':>18} {'lifetime':>9} {'Esav':>7}")
    for label, lifetime, esav in rows:
        print(f"{label:>18} {lifetime:8.2f}y {esav:6.1%}")

    values = dict((label, (lt, es)) for label, lt, es in rows)
    # Fine-grain is the lifetime upper bound ...
    assert values["fine probing [7]"][0] >= values["coarse M=16"][0]
    # ... coarse-grain monotonically approaches it with M ...
    assert (
        values["coarse M=4"][0]
        < values["coarse M=8"][0]
        < values["coarse M=16"][0]
    )
    # ... and banking wins on energy.
    assert values["coarse M=4"][1] > values["fine probing [7]"][1]


def test_fine_grain_uniformity(setup):
    """[7]'s optimality: re-indexing makes per-line idleness uniform."""
    geometry, trace, lut = setup
    static = FineGrainSimulator(FineGrainConfig(geometry), lut).run(trace)
    probing = FineGrainSimulator(
        FineGrainConfig(
            geometry, policy="probing", update_period_cycles=trace.horizon // 32
        ),
        lut,
    ).run(trace)
    print(
        f"\nper-line idleness spread: static={static.idleness_spread:.3f} "
        f"probing={probing.idleness_spread:.3f}"
    )
    assert probing.idleness_spread < static.idleness_spread
    # Near-uniform: all line lifetimes within a few percent of each other.
    lifetimes = probing.line_lifetimes_years
    assert lifetimes.max() / lifetimes.min() < 1.25


def test_fine_grain_throughput(benchmark, setup):
    """The vectorized per-line engine stays fast despite 1024 lines."""
    geometry, trace, lut = setup
    config = FineGrainConfig(
        geometry, policy="probing", update_period_cycles=trace.horizon // 16
    )
    result = benchmark(lambda: FineGrainSimulator(config, lut).run(trace))
    assert result.line_accesses.sum() == len(trace)
