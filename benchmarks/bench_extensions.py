"""Extension experiments beyond the paper's evaluation.

* **Process variation**: lifetime distributions under per-cell Vth
  variation — the relative benefit of idleness balancing survives, the
  absolute lifetimes shrink with array size (weakest-cell effect).
* **Self-heating**: activity-driven per-bank temperatures compound the
  idleness imbalance; dynamic indexing balances both at once.
* **Content flipping** (related work [11]/[15]): the value-axis
  mitigation is orthogonal — it buys nothing for balanced content and
  composes multiplicatively with the paper's idleness-axis scheme.
"""

from __future__ import annotations

import pytest

from repro.aging.cell import CharacterizationFramework
from repro.aging.flipping import flip_gain
from repro.aging.thermal import thermal_bank_lifetimes
from repro.aging.variation import VariationModel


@pytest.fixture(scope="module")
def framework():
    return CharacterizationFramework()


def test_variation_ablation(benchmark, framework):
    """Lifetime distribution of balanced vs unbalanced caches under
    10 mV pull-up sigma."""

    def run():
        model = VariationModel(framework, sigma_vth=0.01, offset_grid_points=5)
        balanced = model.cache_lifetime_distribution(
            [0.51] * 4, cells_per_bank=2048, samples=60
        )
        unbalanced = model.cache_lifetime_distribution(
            [0.02, 0.99, 0.99, 0.04], cells_per_bank=2048, samples=60
        )
        return balanced, unbalanced

    balanced, unbalanced = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"balanced   : mean={balanced.mean:5.2f}y  p1={balanced.yield_lifetime:5.2f}y")
    print(f"unbalanced : mean={unbalanced.mean:5.2f}y  p1={unbalanced.yield_lifetime:5.2f}y")
    # Balancing wins in the mean and at the 99%-yield point.
    assert balanced.mean > unbalanced.mean
    assert balanced.yield_lifetime > unbalanced.yield_lifetime


def test_thermal_ablation(framework):
    """Self-heating widens the gap between static and re-indexed caches."""
    unbalanced = [0.02, 0.99, 0.99, 0.04]
    balanced = [0.51] * 4

    sleep_only_gap = (2.93 / (1 - 0.75 * 0.51)) / (2.93 / (1 - 0.75 * 0.02))
    with_heat_gap = thermal_bank_lifetimes(balanced).min() / thermal_bank_lifetimes(
        unbalanced
    ).min()
    print(
        f"\nbalanced/unbalanced lifetime ratio: sleep-only={sleep_only_gap:.2f} "
        f"with self-heating={with_heat_gap:.2f}"
    )
    assert with_heat_gap > sleep_only_gap


def test_flipping_orthogonality(framework):
    """Flipping only helps skewed content; caches are near-balanced, so
    the paper's idleness lever is the one that matters."""
    print()
    print("content p0   flip gain")
    gains = {}
    for p0 in (0.5, 0.7, 0.9, 0.99):
        gains[p0] = flip_gain(framework, p0)
        print(f"{p0:10.2f} {gains[p0]:10.2f}x")
    assert gains[0.5] == pytest.approx(1.0, rel=1e-6)
    assert gains[0.99] > gains[0.9] > gains[0.7] > 1.0
