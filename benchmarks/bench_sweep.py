"""Sweep-engine benchmark: per-point path vs shared trace-plan path.

Times the same 64-point design-space grid (banking × policy × update
period × breakeven) two ways:

* **old path** — what ``sweep()`` did before the trace-plan engine: one
  independent ``simulate()`` per grid point, each paying the full
  decode, the stable bank argsort and its own idleness pass;
* **plan path** — today's ``sweep()``: one shared
  :class:`~repro.core.plan.TracePlan` memoizes everything
  breakeven-independent, and the ``breakeven_override`` axis is batched
  through :func:`~repro.core.fastsim.run_breakeven_group`.

Both paths must produce bit-identical ``SimulationResult`` fields; the
script asserts that before writing ``BENCH_sweep.json`` (machine
readable: points, wall seconds per path, speedup) so the perf
trajectory is tracked from PR 2 on. Run it directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py            # full 64-point grid
    PYTHONPATH=src python benchmarks/bench_sweep.py --tiny     # CI smoke grid

or through pytest (``test_plan_sweep_fast_and_bitidentical`` runs the
tiny grid and pins bit-identity only — wall-clock speedup is tracked by
the committed full-grid ``BENCH_sweep.json``, not asserted in CI).
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.aging.lut import LifetimeLUT
from repro.analysis.sweep import sweep
from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.simulator import simulate
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def make_grid(tiny: bool):
    """The reference 64-point grid (or a 16-point CI smoke grid)."""
    geometry = CacheGeometry(16 * 1024, 16)
    windows = 60 if tiny else 300
    trace = WorkloadGenerator(geometry, num_windows=windows).generate(
        profile_for("dijkstra")
    )
    banks = [2, 4] if tiny else [2, 4, 8, 16]
    axes = {
        "num_banks": banks,
        "policy": ["static", "probing"],
        "update_period_cycles": [trace.horizon // 8, trace.horizon // 16],
        "breakeven_override": [5, 20] if tiny else [5, 20, 80, 320],
    }
    base = ArchitectureConfig(
        geometry,
        num_banks=4,
        policy="probing",
        update_period_cycles=trace.horizon // 16,
    )
    return base, trace, axes


def old_path(base, trace, axes, lut):
    """The pre-plan sweep: one independent simulate() per point."""
    names = list(axes)
    results = []
    for combo in itertools.product(*(axes[name] for name in names)):
        config = replace(base, **dict(zip(names, combo)))
        results.append(simulate(config, trace, lut))
    return results


def assert_bit_identical(old_results, new_result):
    """Every measured field must match exactly between the two paths."""
    assert len(old_results) == len(new_result)
    for old, point in zip(old_results, new_result):
        new = point.result
        assert old.cache_stats.hits == new.cache_stats.hits
        assert old.cache_stats.misses == new.cache_stats.misses
        assert old.cache_stats.flushes == new.cache_stats.flushes
        assert old.updates_applied == new.updates_applied
        assert old.flush_invalidations == new.flush_invalidations
        assert old.bank_stats == new.bank_stats
        assert old.energy_pj == new.energy_pj
        assert old.baseline_energy_pj == new.baseline_energy_pj
        assert old.lifetime_years == new.lifetime_years


def run_bench(tiny: bool = False, output: Path = DEFAULT_OUTPUT) -> dict:
    base, trace, axes = make_grid(tiny)
    lut = LifetimeLUT.default()  # built outside the timed regions
    points = 1
    for values in axes.values():
        points *= len(values)

    start = time.perf_counter()
    old_results = old_path(base, trace, axes, lut)
    old_seconds = time.perf_counter() - start

    start = time.perf_counter()
    new_result = sweep(base, trace, axes, lut)
    plan_seconds = time.perf_counter() - start

    assert_bit_identical(old_results, new_result)
    payload = {
        "benchmark": "dijkstra",
        "points": points,
        "trace_accesses": len(trace),
        "trace_cycles": trace.horizon,
        "tiny": tiny,
        "old_seconds": round(old_seconds, 4),
        "plan_seconds": round(plan_seconds, 4),
        "speedup": round(old_seconds / plan_seconds, 2),
        "bit_identical": True,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"{points}-point sweep on {len(trace):,} accesses: "
        f"old {old_seconds:.2f}s, plan {plan_seconds:.2f}s "
        f"-> {payload['speedup']}x (written to {output})"
    )
    return payload


def test_plan_sweep_fast_and_bitidentical(tmp_path):
    """Pytest entry: tiny grid, exact agreement. Bit-identity is the
    contract pinned here; the speedup is wall-clock-noisy on a tiny
    grid, so the committed full-grid BENCH_sweep.json tracks it."""
    payload = run_bench(tiny=True, output=tmp_path / "BENCH_sweep.json")
    assert payload["bit_identical"]
    assert payload["points"] == 16


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="CI smoke grid (16 points, short trace)"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="where to write the JSON"
    )
    args = parser.parse_args(argv)
    run_bench(tiny=args.tiny, output=args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
