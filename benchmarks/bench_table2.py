"""Experiment E2 — regenerate Table II (energy + lifetime vs cache size)
and E7 — the headline claims derived from it.

Shape assertions (what must replicate):

* Esav grows with cache size;
* LT0 (static) is a modest improvement over the 2.93-year monolithic
  baseline — the paper's "mere 9%";
* LT (re-indexed) adds a large further extension at every size.
"""

from __future__ import annotations

from repro.experiments.compare import compare_table2
from repro.experiments.paper_data import CELL_LIFETIME_YEARS, TABLE2_AVERAGE
from repro.experiments.tables import headline, table2


def test_table2_reproduction(benchmark, fresh_runner):
    """Time a cold regeneration of Table II, then check shape and values."""
    result = benchmark.pedantic(
        lambda: table2(fresh_runner), rounds=1, iterations=1
    )
    print()
    print(result.render())
    cells, summary = compare_table2(result)
    print(
        f"vs paper: {summary['count']} cells, mean|Δ|={summary['mean_abs_delta']:.2f}, "
        f"mean|rel|={summary['mean_abs_rel']:.1%}"
    )

    average = result.row_for("Average")
    # Esav monotone in size (paper: 32.2 -> 44.3 -> 55.5%).
    assert average[1] < average[4] < average[7]
    # Esav within a few points of the paper at 8/16kB; the 32kB column is
    # the documented divergence (see EXPERIMENTS.md) and gets more slack.
    assert abs(average[1] - TABLE2_AVERAGE[8192][0]) < 5.0
    assert abs(average[4] - TABLE2_AVERAGE[16384][0]) < 5.0
    assert abs(average[7] - TABLE2_AVERAGE[32768][0]) < 10.0
    # Lifetimes: LT0 ~ 3.2y and LT ~ 4.3y at every size.
    for lt0_col, lt_col, size in ((2, 3, 8192), (5, 6, 16384), (8, 9, 32768)):
        assert abs(average[lt0_col] - TABLE2_AVERAGE[size][1]) < 0.35
        assert abs(average[lt_col] - TABLE2_AVERAGE[size][2]) < 0.55
        assert average[lt_col] > average[lt0_col]


def test_headline_claims(warm_runner):
    """E7: ~9% from power management alone; 22%..2x with re-indexing."""
    result = headline(warm_runner)
    print()
    print(result.render())
    rows = {row[0].split(" (")[0]: row[1] for row in result.rows}
    pm_only = rows["power management only"]
    worst = rows[[k for k in rows if k.startswith("worst")][0]]
    best = rows[[k for k in rows if k.startswith("best")][0]]
    assert 4.0 < pm_only < 16.0
    assert worst > 0.0
    assert best > 60.0
    assert CELL_LIFETIME_YEARS == 2.93
