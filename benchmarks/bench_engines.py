"""Engine benchmarks: fast vs reference throughput, and scaling.

Not a paper table — this is the reproduction's own engineering bench.
It demonstrates the vectorized engine is fast enough for full-suite
sweeps (it processes hundreds of thousands of accesses per call) and
pins the exact-agreement contract while timing.
"""

from __future__ import annotations

import time

import pytest

from repro.aging.lut import LifetimeLUT
from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.core.simulator import ReferenceSimulator
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for


def make_workload(ways: int):
    geometry = CacheGeometry(16 * 1024, 16, ways=ways)
    trace = WorkloadGenerator(geometry, num_windows=300).generate(
        profile_for("dijkstra")
    )
    config = ArchitectureConfig(
        geometry,
        num_banks=4,
        policy="probing",
        update_period_cycles=trace.horizon // 16,
    )
    return config, trace, LifetimeLUT.default()


@pytest.fixture(scope="module")
def workload():
    return make_workload(ways=1)


@pytest.fixture(scope="module")
def setassoc_workload():
    return make_workload(ways=4)


def test_fast_engine_throughput(benchmark, workload):
    config, trace, lut = workload
    result = benchmark(lambda: FastSimulator(config, lut).run(trace))
    print(f"\nfast engine: {len(trace):,} accesses -> "
          f"lifetime {result.lifetime_years:.2f}y")
    assert result.total_accesses == len(trace)


def test_reference_engine_throughput(benchmark, workload):
    config, trace, lut = workload
    short = trace.slice(0, trace.horizon // 10)
    result = benchmark.pedantic(
        lambda: ReferenceSimulator(config, lut).run(short), rounds=2, iterations=1
    )
    assert result.total_accesses == len(short)


def test_engines_agree_while_timed(workload):
    config, trace, lut = workload
    short = trace.slice(0, trace.horizon // 10)
    fast = FastSimulator(config, lut).run(short)
    reference = ReferenceSimulator(config, lut).run(short)
    assert fast.bank_stats == reference.bank_stats
    assert fast.cache_stats.hits == reference.cache_stats.hits


def test_setassoc_fast_engine_throughput(benchmark, setassoc_workload):
    config, trace, lut = setassoc_workload
    result = benchmark(lambda: FastSimulator(config, lut).run(trace))
    print(f"\n4-way fast engine: {len(trace):,} accesses -> "
          f"lifetime {result.lifetime_years:.2f}y")
    assert result.total_accesses == len(trace)


def test_setassoc_speedup_over_reference(setassoc_workload):
    """The acceptance point for the set-associative fast path: >= 10x
    over the reference engine on a 4-way geometry, with bit-identical
    measurements."""
    config, trace, lut = setassoc_workload
    start = time.perf_counter()
    fast = FastSimulator(config, lut).run(trace)
    fast_seconds = time.perf_counter() - start
    start = time.perf_counter()
    reference = ReferenceSimulator(config, lut).run(trace)
    reference_seconds = time.perf_counter() - start
    speedup = reference_seconds / fast_seconds
    print(f"\n4-way, {len(trace):,} accesses: fast {fast_seconds:.3f}s, "
          f"reference {reference_seconds:.3f}s -> {speedup:.1f}x")
    assert fast.cache_stats.hits == reference.cache_stats.hits
    assert fast.cache_stats.misses == reference.cache_stats.misses
    assert fast.flush_invalidations == reference.flush_invalidations
    assert fast.bank_stats == reference.bank_stats
    assert fast.energy_pj == reference.energy_pj
    assert fast.lifetime_years == reference.lifetime_years
    assert speedup >= 10.0


def test_trace_generation_throughput(benchmark):
    geometry = CacheGeometry(16 * 1024, 16)
    generator = WorkloadGenerator(geometry, num_windows=300)
    trace = benchmark(lambda: generator.generate(profile_for("lame")))
    assert len(trace) > 10_000
