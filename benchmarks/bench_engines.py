"""Engine benchmarks: fast vs reference throughput, and scaling.

Not a paper table — this is the reproduction's own engineering bench.
It demonstrates the vectorized engine is fast enough for full-suite
sweeps (it processes hundreds of thousands of accesses per call) and
pins the exact-agreement contract while timing.
"""

from __future__ import annotations

import pytest

from repro.aging.lut import LifetimeLUT
from repro.cache.geometry import CacheGeometry
from repro.core.config import ArchitectureConfig
from repro.core.fastsim import FastSimulator
from repro.core.simulator import ReferenceSimulator
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for


@pytest.fixture(scope="module")
def workload():
    geometry = CacheGeometry(16 * 1024, 16)
    trace = WorkloadGenerator(geometry, num_windows=300).generate(
        profile_for("dijkstra")
    )
    config = ArchitectureConfig(
        geometry,
        num_banks=4,
        policy="probing",
        update_period_cycles=trace.horizon // 16,
    )
    return config, trace, LifetimeLUT.default()


def test_fast_engine_throughput(benchmark, workload):
    config, trace, lut = workload
    result = benchmark(lambda: FastSimulator(config, lut).run(trace))
    print(f"\nfast engine: {len(trace):,} accesses -> "
          f"lifetime {result.lifetime_years:.2f}y")
    assert result.total_accesses == len(trace)


def test_reference_engine_throughput(benchmark, workload):
    config, trace, lut = workload
    short = trace.slice(0, trace.horizon // 10)
    result = benchmark.pedantic(
        lambda: ReferenceSimulator(config, lut).run(short), rounds=2, iterations=1
    )
    assert result.total_accesses == len(short)


def test_engines_agree_while_timed(workload):
    config, trace, lut = workload
    short = trace.slice(0, trace.horizon // 10)
    fast = FastSimulator(config, lut).run(short)
    reference = ReferenceSimulator(config, lut).run(short)
    assert fast.bank_stats == reference.bank_stats
    assert fast.cache_stats.hits == reference.cache_stats.hits


def test_trace_generation_throughput(benchmark):
    geometry = CacheGeometry(16 * 1024, 16)
    generator = WorkloadGenerator(geometry, num_windows=300)
    trace = benchmark(lambda: generator.generate(profile_for("lame")))
    assert len(trace) > 10_000
