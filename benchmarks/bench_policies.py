"""Experiment E5 — §IV-B2's figure-like result: Probing vs Scrambling.

The paper's argument, measured:

* probing is perfectly uniform whenever the epoch count is a multiple
  of M (error exactly 0);
* scrambling's uniformity error decays with the number of updates (the
  RNG repetition error goes as ~1/sqrt(N));
* with enough updates the two policies deliver the same cache lifetime
  ("de facto identical results").

Also times the per-access mapping operation of each policy — the path
that sits in front of the one-hot encoder on every cache access.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.lfsr import GaloisLFSR
from repro.indexing.analysis import (
    mapping_histogram,
    rng_repetition_error,
    uniformity_error,
)
from repro.indexing.policies import make_policy


def test_uniformity_convergence_series():
    """Print the paper's convergence story as a table of errors."""
    print()
    print("uniformity error vs updates (M=4):")
    print(f"{'epochs':>8} {'probing':>9} {'scrambling':>11}")
    rows = []
    for epochs in (4, 8, 16, 64, 256, 1024):
        probing = uniformity_error(mapping_histogram(make_policy("probing", 4), epochs - 1))
        scrambling = uniformity_error(
            mapping_histogram(make_policy("scrambling", 4), epochs - 1)
        )
        rows.append((epochs, probing, scrambling))
        print(f"{epochs:>8} {probing:>9.4f} {scrambling:>11.4f}")

    # Probing: exact uniformity at every multiple of M.
    assert all(p == 0.0 for _, p, _ in rows)
    # Scrambling: large-N error far below small-N error.
    assert rows[-1][2] < rows[0][2]
    assert rows[-1][2] < 0.2


def test_rng_error_inverse_sqrt_decay():
    """The paper: RNG repetition error ~ 1/sqrt(N)."""
    lfsr = GaloisLFSR(16, seed=0xACE1)
    words = np.array([lfsr.step() & 0x3 for _ in range(65535)])
    print()
    print("LFSR repetition error vs N (ideal decay ~ 1/sqrt(N)):")
    previous = None
    for n in (64, 256, 1024, 4096, 16384, 65535):
        error = rng_repetition_error(words[:n], 4)
        print(f"  N={n:>6}: error={error:.4f}  (1/sqrt(N)={1/np.sqrt(n):.4f})")
        if previous is not None and n >= 1024:
            assert error <= previous * 1.2  # allow jitter, require decay
        previous = error
    assert rng_repetition_error(words, 4) < 0.01


@pytest.mark.parametrize("policy_name", ["static", "probing", "scrambling"])
def test_mapping_throughput(benchmark, policy_name):
    """Per-epoch mapping vector construction (the fast engine's hot call)."""
    policy = make_policy(policy_name, 16)
    policy.update()
    mapping = benchmark(policy.mapping)
    assert sorted(mapping.tolist()) == list(range(16))
