"""Compiled-kernel benchmark: backend speedups and the sharded stream.

Two claims get measured (and written to ``BENCH_kernels.json``):

* **Kernel time** — the five :mod:`repro.kernels` kernels on
  workload-shaped inputs, best compiled backend vs the numpy anchor,
  grouped into the two profiles that dominate the repo's benches:
  ``sweep`` (one-shot gap extract + breakeven thresholding + the LRU
  rank walk, the BENCH_sweep hot path) and ``stream`` (the fused
  carry-state gap fold + carried LRU segments across hundreds of
  chunks, the BENCH_stream hot path). Every timed pair is first checked
  bit-identical; the acceptance target is a >= 5x aggregate speedup per
  profile.
* **Sharded streaming** — one chunked ``stream_sweep`` grid run
  serially and with ``parallel=N`` worker processes, counters asserted
  identical. Two numbers matter: the end-to-end wall-clock pair (which
  is only a win when the host actually has idle cores — ``host_cpus``
  is recorded so a single-core container's inversion reads as what it
  is), and the per-shard pass time vs the unsharded pass measured
  in-process with the same cursor structure, which is the hardware-
  independent evidence that one worker's slice of the pass is cheaper
  than the whole pass.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py          # full run
    PYTHONPATH=src python benchmarks/bench_kernels.py --tiny   # CI smoke

or through pytest (tiny sizes, bit-identity pinned, no speed gate —
speed is hardware-dependent and belongs in the artifact, not the test
suite).
"""

from __future__ import annotations

import argparse
import functools
import json
import time
from pathlib import Path

import numpy as np

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

FULL = {
    "accesses_per_bank": 400_000,
    "num_banks": 4,
    "chunks": 300,
    "chunk_accesses": 5_000,
    "lru_accesses": 800_000,
    "num_sets": 1024,
    "ways": 4,
    "repeats": 5,
    "stream_windows": 4000,
    "stream_chunk_cycles": 32768,
    "stream_workers": 4,
}

TINY = {
    "accesses_per_bank": 2_000,
    "num_banks": 4,
    "chunks": 10,
    "chunk_accesses": 500,
    "lru_accesses": 5_000,
    "num_sets": 64,
    "ways": 4,
    "repeats": 2,
    "stream_windows": 60,
    "stream_chunk_cycles": 4096,
    "stream_workers": 2,
}

BREAKEVENS = (5, 10, 20, 50, 100, None)


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sorted_bank_stream(rng, accesses_per_bank, num_banks, end):
    banks = [
        np.sort(
            rng.choice(end, size=accesses_per_bank, replace=False)
        ).astype(np.int64)
        for _ in range(num_banks)
    ]
    cycles = np.concatenate(banks)
    splits = np.cumsum([0] + [accesses_per_bank] * num_banks).astype(np.int64)
    return cycles, splits


def bench_kernels(params: dict, compiled: str) -> dict:
    """Per-kernel and per-profile timings, compiled vs numpy."""
    from repro.kernels import dispatch

    rng = np.random.default_rng(2011)
    repeats = params["repeats"]
    num_banks = params["num_banks"]
    be = np.array(
        [-1 if b is None else b for b in BREAKEVENS], dtype=np.int64
    )

    # --- sweep-profile inputs: one whole-trace pass -------------------
    end = params["accesses_per_bank"] * 3
    cycles, splits = _sorted_bank_stream(
        rng, params["accesses_per_bank"], num_banks, end
    )
    n_lru = params["lru_accesses"]
    num_sets, ways = params["num_sets"], params["ways"]
    set_index = np.sort(rng.integers(0, num_sets, size=n_lru)).astype(np.int64)
    lru_tags = rng.integers(0, 64, size=n_lru).astype(np.int64)
    lru_starts = np.searchsorted(set_index, np.arange(num_sets + 1)).astype(
        np.int64
    )

    # --- stream-profile inputs: carry state across chunks -------------
    gap_chunks = []
    window = 4 * params["chunk_accesses"]
    for index in range(params["chunks"]):
        lo = index * window
        per_bank = params["chunk_accesses"] // num_banks
        parts = [
            np.sort(
                rng.choice(
                    np.arange(lo, lo + window), size=per_bank, replace=False
                )
            ).astype(np.int64)
            for _ in range(num_banks)
        ]
        gap_chunks.append(
            (
                np.concatenate(parts),
                np.cumsum([0] + [per_bank] * num_banks).astype(np.int64),
            )
        )
    seg_chunks = []
    for _ in range(params["chunks"]):
        m = params["chunk_accesses"]
        si = np.sort(rng.integers(0, num_sets, size=m)).astype(np.int64)
        st = rng.integers(0, 64, size=m).astype(np.int64)
        seg_chunks.append((si, st))

    def run_gap_extract(backend):
        return dispatch.gap_extract(cycles, splits, 0, end, backend=backend)

    gap_values, gap_banks, *_ = run_gap_extract("numpy")

    def run_threshold(backend):
        useful = np.zeros((be.size, num_banks), dtype=np.int64)
        sleep = np.zeros((be.size, num_banks), dtype=np.int64)
        dispatch.gap_threshold_batch(
            gap_values, gap_banks, num_banks, be, useful, sleep, backend=backend
        )
        return useful, sleep

    def run_lru_walk(backend):
        return dispatch.lru_walk(lru_tags, lru_starts, ways, backend=backend)

    def run_stream_fold(backend):
        last_event = np.full(num_banks, -1, dtype=np.int64)
        acc = np.zeros(num_banks, dtype=np.int64)
        intervals = np.zeros(num_banks, dtype=np.int64)
        idle = np.zeros(num_banks, dtype=np.int64)
        useful = np.zeros((be.size, num_banks), dtype=np.int64)
        sleep = np.zeros((be.size, num_banks), dtype=np.int64)
        for chunk_cycles, chunk_splits in gap_chunks:
            dispatch.stream_gap_update(
                chunk_cycles,
                chunk_splits,
                last_event,
                acc,
                intervals,
                idle,
                be,
                useful,
                sleep,
                backend=backend,
            )
        return last_event, acc, intervals, idle, useful, sleep

    def run_lru_segments(backend):
        stacks = np.full((num_sets, ways), -1, dtype=np.int64)
        hits = 0
        for si, st in seg_chunks:
            hits += dispatch.lru_segment(si, st, stacks, backend=backend)
        return hits, stacks

    def identical(a, b):
        if isinstance(a, tuple):
            return all(identical(x, y) for x, y in zip(a, b))
        if isinstance(a, np.ndarray):
            return bool(np.array_equal(a, b))
        return a == b

    def gap_view(result):
        values, banks, *counters = result
        return (
            sorted(zip(banks.tolist(), values.tolist())),
            tuple(c.tolist() for c in counters),
        )

    kernels = {
        "gap_extract": (run_gap_extract, gap_view, "sweep"),
        "gap_threshold_batch": (run_threshold, None, "sweep"),
        "lru_walk": (run_lru_walk, None, "sweep"),
        "stream_gap_update": (run_stream_fold, None, "stream"),
        "lru_segment": (run_lru_segments, None, "stream"),
    }

    report = {}
    totals = {"sweep": {"numpy": 0.0, compiled: 0.0},
              "stream": {"numpy": 0.0, compiled: 0.0}}
    all_identical = True
    for name, (fn, view, profile) in kernels.items():
        ref, got = fn("numpy"), fn(compiled)
        if view is not None:
            ref, got = view(ref), view(got)
        same = identical(ref, got)
        all_identical = all_identical and same
        t_numpy = _best(lambda: fn("numpy"), repeats)
        t_compiled = _best(lambda: fn(compiled), repeats)
        totals[profile]["numpy"] += t_numpy
        totals[profile][compiled] += t_compiled
        report[name] = {
            "profile": profile,
            "numpy_ms": round(t_numpy * 1000, 2),
            f"{compiled}_ms": round(t_compiled * 1000, 2),
            "speedup": round(t_numpy / t_compiled, 2),
            "bit_identical": same,
        }
    profiles = {
        profile: {
            "numpy_ms": round(times["numpy"] * 1000, 2),
            f"{compiled}_ms": round(times[compiled] * 1000, 2),
            "speedup": round(times["numpy"] / times[compiled], 2),
        }
        for profile, times in totals.items()
    }
    return {
        "backend": compiled,
        "kernels": report,
        "profiles": profiles,
        "bit_identical": all_identical,
    }


def _cursor_pass(configs, factory, shard):
    """Run one (possibly sharded) pass over a fresh stream; per-point
    cursors so the sharded and unsharded passes have identical
    structure. Returns (seconds, horizon, name, partials-per-point)."""
    from repro.core.plan import StreamingPlan
    from repro.core.streamsim import StreamCursor

    start = time.perf_counter()
    stream = factory()
    plan = StreamingPlan()
    cursors = [
        StreamCursor([config], plan, shard=shard) for config in configs
    ]
    for chunk in stream.chunks():
        plan.begin_chunk(chunk)
        for cursor in cursors:
            cursor.process(plan)
    elapsed = time.perf_counter() - start
    partials = [cursor.finalize_partial(stream.horizon) for cursor in cursors]
    return elapsed, stream.horizon, stream.name, partials


def bench_sharded_stream(params: dict) -> dict:
    """One chunked stream grid: serial vs parallel, plus per-shard cost."""
    import itertools
    import os
    from dataclasses import replace

    from repro.aging.lut import LifetimeLUT
    from repro.analysis.sweep import stream_sweep
    from repro.cache.geometry import CacheGeometry
    from repro.core.config import ArchitectureConfig
    from repro.core.streamsim import merge_shard_partials
    from repro.trace.generator import WorkloadGenerator
    from repro.trace.mediabench import profile_for

    lut = LifetimeLUT.default()  # warm the memo so neither side pays it
    geometry = CacheGeometry(16 * 1024, 16)
    generator = WorkloadGenerator(geometry, num_windows=params["stream_windows"])
    profile = profile_for("dijkstra")
    base = ArchitectureConfig(
        geometry,
        num_banks=4,
        policy="probing",
        update_period_cycles=generator.horizon // 16,
    )
    axes = {
        "num_banks": [2, 4, 8],
        "policy": ["static", "probing"],
        "breakeven_override": [5, 10, 20, 50, 100, None],
    }
    factory = functools.partial(
        generator.stream, profile, params["stream_chunk_cycles"]
    )
    workers = params["stream_workers"]

    # End-to-end: the public parallel=N path, counters asserted equal.
    start = time.perf_counter()
    serial = stream_sweep(base, factory, axes, lut=lut)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = stream_sweep(base, factory, axes, lut=lut, parallel=workers)
    parallel_s = time.perf_counter() - start
    same = all(
        s.result.bank_stats == p.result.bank_stats
        and s.result.cache_stats.hits == p.result.cache_stats.hits
        and s.result.cache_stats.misses == p.result.cache_stats.misses
        and s.result.updates_applied == p.result.updates_applied
        for s, p in zip(serial.points, parallel.points)
    )

    # Per-shard cost, in-process (no pool/spawn noise): what one worker
    # actually computes, against the unsharded pass with the identical
    # per-point cursor structure. max(shard) vs unsharded is the
    # wall-clock a host with >= workers idle cores approaches.
    names = tuple(axes)
    configs = [
        replace(base, **dict(zip(names, combo)))
        for combo in itertools.product(*axes.values())
    ]
    unsharded_s, horizon, name, _ = _cursor_pass(configs, factory, None)
    shard_seconds = []
    shard_partials = []
    for worker in range(workers):
        elapsed, _, _, partials = _cursor_pass(
            configs, factory, (worker, workers)
        )
        shard_seconds.append(elapsed)
        shard_partials.append(partials)
    merged_same = True
    for position, point in enumerate(serial.points):
        merged = merge_shard_partials(
            [configs[position]],
            [shards[position] for shards in shard_partials],
            horizon,
            name,
            lut,
        )[0]
        merged_same = merged_same and (
            merged.bank_stats == point.result.bank_stats
            and merged.cache_stats.hits == point.result.cache_stats.hits
            and merged.cache_stats.misses == point.result.cache_stats.misses
        )

    return {
        "grid_points": len(serial.points),
        "trace_cycles": generator.horizon,
        "chunk_cycles": params["stream_chunk_cycles"],
        "workers": workers,
        "host_cpus": os.cpu_count(),
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "unsharded_pass_seconds": round(unsharded_s, 2),
        "shard_pass_seconds": [round(s, 2) for s in shard_seconds],
        "shard_speedup": round(unsharded_s / max(shard_seconds), 2),
        "bit_identical": same and merged_same,
    }


def run_bench(tiny: bool = False, output: Path = DEFAULT_OUTPUT) -> dict:
    from repro.kernels import dispatch

    params = TINY if tiny else FULL
    compiled = dispatch.compiled_backend()
    payload = {
        "tiny": tiny,
        "backends": {
            name: (reason or "available")
            for name, reason in dispatch.backend_status().items()
        },
    }
    if compiled is None:
        # Honest degradation: nothing compiled to measure against. The
        # artifact still records why, so a CI guard leg can assert it.
        payload["kernel_bench"] = None
        payload["bit_identical"] = None
        print("no compiled backend available; kernel bench skipped")
    else:
        payload["kernel_bench"] = bench_kernels(params, compiled)
        payload["bit_identical"] = payload["kernel_bench"]["bit_identical"]
        for profile, times in payload["kernel_bench"]["profiles"].items():
            print(
                f"{profile:>7}: numpy {times['numpy_ms']:.1f} ms, "
                f"{compiled} {times[f'{compiled}_ms']:.1f} ms "
                f"({times['speedup']}x)"
            )
    payload["sharded_stream"] = bench_sharded_stream(params)
    shard = payload["sharded_stream"]
    print(
        f"sharded stream x{shard['workers']} on {shard['host_cpus']} cpus: "
        f"serial {shard['serial_seconds']}s, "
        f"parallel {shard['parallel_seconds']}s "
        f"({shard['parallel_speedup']}x end-to-end); "
        f"per-shard pass {max(shard['shard_pass_seconds'])}s vs "
        f"unsharded {shard['unsharded_pass_seconds']}s "
        f"({shard['shard_speedup']}x per worker), "
        f"identical={shard['bit_identical']}"
    )
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"written to {output}")
    return payload


def test_kernel_bench_bit_identity(tmp_path):
    """Pytest entry: tiny sizes; pins that everything the benchmark
    times produces bit-identical counters (speedups are hardware facts
    and live in the artifact, not the test suite)."""
    payload = run_bench(tiny=True, output=tmp_path / "BENCH_kernels.json")
    assert payload["sharded_stream"]["bit_identical"]
    if payload["kernel_bench"] is not None:
        assert payload["kernel_bench"]["bit_identical"]
        for entry in payload["kernel_bench"]["kernels"].values():
            assert entry["bit_identical"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI smoke sizes")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    run_bench(tiny=args.tiny, output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
