"""Experiment E3 — regenerate Table III (energy + lifetime vs line size).

Shape assertions:

* Esav drops sharply when doubling the line to 32B (paper: 44.3 -> 31.9%
  at 16kB — the per-row-dominated leakage makes a 16kB/32B cache behave
  like an 8kB/16B one);
* lifetime is nearly line-size independent (paper: 4.31 vs 4.23 years).
"""

from __future__ import annotations

from repro.experiments.compare import compare_table3
from repro.experiments.paper_data import TABLE3_AVERAGE
from repro.experiments.tables import table3


def test_table3_reproduction(benchmark, fresh_runner):
    result = benchmark.pedantic(
        lambda: table3(fresh_runner), rounds=1, iterations=1
    )
    print()
    print(result.render())
    cells, summary = compare_table3(result)
    print(
        f"vs paper: {summary['count']} cells, mean|Δ|={summary['mean_abs_delta']:.2f}, "
        f"mean|rel|={summary['mean_abs_rel']:.1%}"
    )

    average = result.row_for("Average")
    esav_16, lt_16, esav_32, lt_32 = average[1], average[2], average[3], average[4]
    # The big Esav drop.
    assert esav_32 < esav_16 - 6.0
    assert abs(esav_16 - TABLE3_AVERAGE[16][0]) < 5.0
    assert abs(esav_32 - TABLE3_AVERAGE[32][0]) < 5.0
    # Lifetime barely moves.
    assert abs(lt_32 - lt_16) < 0.25
    assert abs(lt_16 - TABLE3_AVERAGE[16][1]) < 0.45
    assert abs(lt_32 - TABLE3_AVERAGE[32][1]) < 0.45
