"""Experiment E4 — regenerate Table IV (idleness/lifetime vs banks).

Shape assertions:

* both idleness and lifetime grow monotonically with M at every size;
* M = 8 reaches roughly a 2x lifetime over the monolithic 2.93 years
  (paper: 5.30-5.98y); M = 2 stays a modest improvement (3.34-3.68y);
* absolute values within ~0.5y / a few idleness points of the paper.
"""

from __future__ import annotations

from repro.experiments.compare import compare_table4
from repro.experiments.paper_data import CELL_LIFETIME_YEARS, TABLE4
from repro.experiments.tables import table4


def test_table4_reproduction(benchmark, fresh_runner):
    result = benchmark.pedantic(
        lambda: table4(fresh_runner), rounds=1, iterations=1
    )
    print()
    print(result.render())
    cells, summary = compare_table4(result)
    print(
        f"vs paper: {summary['count']} cells, mean|Δ|={summary['mean_abs_delta']:.2f}, "
        f"mean|rel|={summary['mean_abs_rel']:.1%}"
    )

    for row in result.rows:
        size = int(str(row[0]).rstrip("kB")) * 1024
        idle2, lt2, idle4, lt4, idle8, lt8 = row[1:7]
        # Monotone in M.
        assert idle2 < idle4 < idle8
        assert lt2 < lt4 < lt8
        # M=8 ~ 2x, M=2 modest.
        assert lt8 / CELL_LIFETIME_YEARS > 1.7
        assert lt2 / CELL_LIFETIME_YEARS < 1.35
        # Absolute agreement. The synthetic workloads' idleness is
        # size-independent by construction while the paper's drifts a
        # few points upward with cache size (see EXPERIMENTS.md), so the
        # M=8 column gets extra slack at 32kB.
        for banks, (idle, lt) in ((2, (idle2, lt2)), (4, (idle4, lt4)), (8, (idle8, lt8))):
            paper_idle, paper_lt = TABLE4[(size, banks)]
            tolerance = 0.80 if banks == 8 else 0.55
            assert abs(lt - paper_lt) < tolerance, (size, banks)
            assert abs(idle - paper_idle) < 12.0, (size, banks)
