"""Streaming-pipeline benchmark: peak RSS and throughput, streamed vs one-shot.

The streaming trace pipeline's claim is about *memory*, not speed: a
streamed simulation's peak resident set is bounded by the chunk size
(plus constant engine state), not the trace length, so traces larger
than RAM can be simulated end to end. This benchmark measures that
instead of asserting it:

* **one-shot** — generate the full synthetic trace in memory, simulate
  with the vectorized engine (the PR 2 path);
* **streamed** — the same workload through
  :meth:`~repro.trace.generator.WorkloadGenerator.stream` and
  :func:`~repro.core.streamsim.run_streaming`; the trace is never
  resident.

Each mode runs in its own subprocess (``--mode``), because peak RSS is
a high-water mark of the whole process — the two paths must not share
one. The child reports ``ru_maxrss`` plus the result's integer counters;
the parent asserts the counters agree exactly (same machine simulated)
and writes ``BENCH_stream.json`` with both profiles. The streamed child
can additionally run under an *enforced* address-space cap
(``--rss-cap-mb``, via ``resource.setrlimit``) — CI uses that to turn
"bounded by chunk size" into a hard failure if it regresses. The
default geometry gives a trace horizon ≥ 300× the default chunk, far
past the ≥ 10× the acceptance criterion asks for.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_stream.py                 # full run
    PYTHONPATH=src python benchmarks/bench_stream.py --tiny          # CI smoke
    PYTHONPATH=src python benchmarks/bench_stream.py --windows 50000 # bigger

or through pytest (tiny sizes, counter agreement pinned).
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

DEFAULT_WINDOWS = 12000          # × 1024 cycles ≈ 12.3M simulated cycles
DEFAULT_CHUNK_CYCLES = 32768     # horizon / chunk ≈ 375 chunks


def _peak_rss_mb() -> float:
    """Process high-water resident set, in MiB."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes there, KiB on Linux
        return peak / (1024 * 1024)
    return peak / 1024


def _build(windows: int):
    from repro.cache.geometry import CacheGeometry
    from repro.core.config import ArchitectureConfig
    from repro.trace.generator import WorkloadGenerator
    from repro.trace.mediabench import profile_for

    geometry = CacheGeometry(16 * 1024, 16)
    generator = WorkloadGenerator(geometry, num_windows=windows)
    profile = profile_for("dijkstra")
    config = ArchitectureConfig(
        geometry,
        num_banks=4,
        policy="probing",
        update_period_cycles=generator.horizon // 16,
    )
    return generator, profile, config


def _counters(result) -> dict:
    return {
        "hits": result.cache_stats.hits,
        "misses": result.cache_stats.misses,
        "flushes": result.cache_stats.flushes,
        "updates_applied": result.updates_applied,
        "flush_invalidations": result.flush_invalidations,
        "sleep_cycles": sum(s.sleep_cycles for s in result.bank_stats),
        "idle_intervals": sum(s.idle_intervals for s in result.bank_stats),
        "bank_accesses": [s.accesses for s in result.bank_stats],
    }


def run_mode(mode: str, windows: int, chunk_cycles: int, rss_cap_mb: int) -> dict:
    """Child entry: one measured simulation, JSON profile on stdout."""
    if rss_cap_mb:
        cap = rss_cap_mb * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

    generator, profile, config = _build(windows)
    start = time.perf_counter()
    if mode == "streamed":
        from repro.core.streamsim import run_streaming

        result = run_streaming(config, generator.stream(profile, chunk_cycles))
        accesses = result.cache_stats.hits + result.cache_stats.misses
    else:
        from repro.core.simulator import simulate

        trace = generator.generate(profile)
        result = simulate(config, trace, engine="fast")
        accesses = len(trace)
    seconds = time.perf_counter() - start
    return {
        "mode": mode,
        "seconds": round(seconds, 3),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "accesses": accesses,
        "accesses_per_sec": round(accesses / seconds, 1),
        "rss_cap_mb": rss_cap_mb,
        "counters": _counters(result),
    }


def _run_child(mode: str, windows: int, chunk_cycles: int, rss_cap_mb: int) -> dict:
    command = [
        sys.executable,
        __file__,
        "--mode",
        mode,
        "--windows",
        str(windows),
        "--chunk-cycles",
        str(chunk_cycles),
        "--rss-cap-mb",
        str(rss_cap_mb),
    ]
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0:
        from repro.errors import SimulationError

        raise SimulationError(
            f"{mode} child failed (rc={proc.returncode}):\n{proc.stderr[-2000:]}"
        )
    return json.loads(proc.stdout)


def run_bench(
    windows: int = DEFAULT_WINDOWS,
    chunk_cycles: int = DEFAULT_CHUNK_CYCLES,
    rss_cap_mb: int = 0,
    output: Path = DEFAULT_OUTPUT,
) -> dict:
    horizon = windows * 1024
    streamed = _run_child("streamed", windows, chunk_cycles, rss_cap_mb)
    oneshot = _run_child("oneshot", windows, chunk_cycles, 0)
    assert streamed["counters"] == oneshot["counters"], (
        "streamed and one-shot paths disagree — bit-identity broken"
    )
    payload = {
        "benchmark": "dijkstra",
        "windows": windows,
        "trace_cycles": horizon,
        "trace_accesses": oneshot["accesses"],
        "chunk_cycles": chunk_cycles,
        "horizon_over_chunk": round(horizon / chunk_cycles, 1),
        "streamed": {k: v for k, v in streamed.items() if k != "counters"},
        "oneshot": {k: v for k, v in oneshot.items() if k != "counters"},
        "rss_ratio": round(
            oneshot["peak_rss_mb"] / streamed["peak_rss_mb"], 2
        ),
        "bit_identical": True,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"{oneshot['accesses']:,} accesses over {horizon:,} cycles "
        f"({payload['horizon_over_chunk']}x the {chunk_cycles:,}-cycle chunk):\n"
        f"  one-shot: {oneshot['peak_rss_mb']:.0f} MiB peak, "
        f"{oneshot['accesses_per_sec']:,.0f} acc/s\n"
        f"  streamed: {streamed['peak_rss_mb']:.0f} MiB peak"
        + (f" (enforced cap {rss_cap_mb} MiB)" if rss_cap_mb else "")
        + f", {streamed['accesses_per_sec']:,.0f} acc/s\n"
        f"  RSS ratio {payload['rss_ratio']}x (written to {output})"
    )
    return payload


def test_stream_bench_counters_agree(tmp_path):
    """Pytest entry: tiny sizes; pins that both measured paths simulate
    the identical machine (full bit-identity is pinned by
    tests/test_stream.py — this holds the *benchmark harness* honest)."""
    payload = run_bench(
        windows=40,
        chunk_cycles=4096,
        output=tmp_path / "BENCH_stream.json",
    )
    assert payload["bit_identical"]
    assert payload["streamed"]["peak_rss_mb"] > 0
    assert payload["trace_cycles"] == 40 * 1024


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=["oneshot", "streamed"], default="")
    parser.add_argument("--windows", type=int, default=DEFAULT_WINDOWS)
    parser.add_argument("--chunk-cycles", type=int, default=DEFAULT_CHUNK_CYCLES)
    parser.add_argument(
        "--rss-cap-mb",
        type=int,
        default=0,
        help="enforce this address-space cap (setrlimit) on the streamed run",
    )
    parser.add_argument(
        "--tiny", action="store_true", help="CI smoke sizes (fast, still multi-chunk)"
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if args.mode:
        print(json.dumps(run_mode(args.mode, args.windows, args.chunk_cycles, args.rss_cap_mb)))
        return 0
    windows = 400 if args.tiny else args.windows
    run_bench(
        windows=windows,
        chunk_cycles=args.chunk_cycles,
        rss_cap_mb=args.rss_cap_mb,
        output=args.output,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
