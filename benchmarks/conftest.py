"""Shared fixtures for the benchmark harness.

Every ``bench_table*.py`` regenerates one of the paper's tables and
prints it next to the published numbers. Two sizes are supported:

* default: *quick* settings (6 benchmarks, 400-window traces) so the
  whole harness runs in a couple of minutes;
* ``REPRO_BENCH_FULL=1``: the full 18-benchmark, 1500-window runs used
  for EXPERIMENTS.md.

The lifetime LUT is built once up front so cell characterization never
pollutes a timing measurement.
"""

from __future__ import annotations

import os

import pytest

from repro.aging.lut import LifetimeLUT
from repro.experiments.runner import ExperimentRunner
from repro.experiments.suite import ExperimentSettings


def make_settings() -> ExperimentSettings:
    """Quick settings by default; full with REPRO_BENCH_FULL=1."""
    settings = ExperimentSettings()
    if not os.environ.get("REPRO_BENCH_FULL"):
        settings = settings.quick()
    return settings


@pytest.fixture(scope="session")
def lut() -> LifetimeLUT:
    """The calibrated lifetime LUT, built before any timing starts."""
    return LifetimeLUT.default()


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return make_settings()


@pytest.fixture()
def fresh_runner(settings, lut) -> ExperimentRunner:
    """A cold runner: traces and simulations run inside the timed call."""
    return ExperimentRunner(settings=settings, lut=lut)


@pytest.fixture(scope="session")
def warm_runner(settings, lut) -> ExperimentRunner:
    """A shared runner reused by assertion-only checks."""
    return ExperimentRunner(settings=settings, lut=lut)
