"""Experiment E6 + ablations of the design choices DESIGN.md calls out.

* breakeven-time sweep: energy/lifetime around the computed optimum
  (validates the Block Control sizing story — Section III-A1);
* update-period sweep: flush cost vs uniformity benefit (Section
  III-A3's "updates can be very infrequent");
* drowsy-voltage (eta) sensitivity: how the lifetime tables would move
  with a different retention voltage — the paper's central calibrated
  constant;
* counter-width claim: 5-6 bit counters across the explored design
  space.
"""

from __future__ import annotations

import pytest

from repro.aging.lut import LifetimeLUT
from repro.aging.nbti import NBTIModel
from repro.cache.geometry import CacheGeometry
from repro.core.architecture import summarize
from repro.core.config import ArchitectureConfig
from repro.core.simulator import simulate
from repro.trace.generator import WorkloadGenerator
from repro.trace.mediabench import profile_for


@pytest.fixture(scope="module")
def workload():
    geometry = CacheGeometry(16 * 1024, 16)
    trace = WorkloadGenerator(geometry, num_windows=400).generate(
        profile_for("cjpeg")
    )
    return geometry, trace, LifetimeLUT.default()


def test_breakeven_ablation(benchmark, workload):
    """Esav peaks near the computed breakeven; lifetime degrades slowly
    as breakeven grows (less sleep per gap)."""
    geometry, trace, lut = workload

    def sweep():
        rows = []
        for breakeven in (5, 20, 80, 320):
            config = ArchitectureConfig(
                geometry, num_banks=4, policy="probing",
                update_period_cycles=trace.horizon // 16,
                breakeven_override=breakeven,
            )
            result = simulate(config, trace, lut)
            rows.append((breakeven, result.energy_savings, result.lifetime_years))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("breakeven  Esav     LT")
    for breakeven, esav, lt in rows:
        print(f"{breakeven:>9} {esav:6.1%} {lt:6.2f}y")
    computed = ArchitectureConfig(geometry, num_banks=4).breakeven()
    print(f"computed breakeven: {computed} cycles")
    # Lifetime decreases monotonically with breakeven.
    lifetimes = [lt for _, _, lt in rows]
    assert all(a >= b for a, b in zip(lifetimes, lifetimes[1:]))
    # A pathologically long breakeven wastes energy vs the computed one.
    esavs = dict((b, e) for b, e, _ in rows)
    assert esavs[320] < esavs[20]


def test_update_period_ablation(workload):
    """More updates -> better balance but more flush misses; the
    lifetime benefit saturates once updates >= M."""
    geometry, trace, lut = workload
    static = simulate(
        ArchitectureConfig(geometry, num_banks=4, policy="static"), trace, lut
    )
    print()
    print("updates  LT      hit-rate cost")
    lifetimes = {}
    for updates in (2, 4, 16, 64):
        config = ArchitectureConfig(
            geometry, num_banks=4, policy="probing",
            update_period_cycles=trace.horizon // updates,
        )
        result = simulate(config, trace, lut)
        cost = static.hit_rate - result.hit_rate
        lifetimes[updates] = result.lifetime_years
        print(f"{updates:>7} {result.lifetime_years:6.2f}y {cost:8.2%}")
    assert lifetimes[16] > lifetimes[2]
    assert lifetimes[64] == pytest.approx(lifetimes[16], rel=0.05)  # saturated


def test_eta_sensitivity():
    """Lifetime tables scale with the drowsy recovery efficiency eta:
    the deeper the retention voltage, the closer sleep is to 'free'
    recovery. Reports LT(I=0.42) for three retention points."""
    print()
    print("Vdd_low   gamma   eta    LT at I=0.42")
    for vdd_low in (0.9, 0.66, 0.45):
        model = NBTIModel(vdd_low=vdd_low)
        eta = model.sleep_recovery_efficiency
        lifetime = 2.93 / (1.0 - eta * 0.42)
        print(f"{vdd_low:7.2f} {model.sleep_stress_factor:7.3f} {eta:6.3f} {lifetime:8.2f}y")
    strong = NBTIModel(vdd_low=0.45).sleep_recovery_efficiency
    weak = NBTIModel(vdd_low=0.9).sleep_recovery_efficiency
    assert strong > weak


def test_counter_width_claim():
    """Section III-A1: '5- or 6-bit counters suffice' everywhere in the
    explored design space."""
    for size_kb in (8, 16, 32):
        for banks in (2, 4, 8, 16):
            config = ArchitectureConfig(
                CacheGeometry(size_kb * 1024, 16), num_banks=banks
            )
            assert summarize(config).counter_width_bits <= 6


def test_wiring_overhead_limits_partitioning(workload):
    """Beyond M~16 the wiring overhead eats the banking benefit — the
    reason the paper stops at 16 banks."""
    geometry, trace, lut = workload
    savings = {}
    for banks in (4, 16, 64):
        config = ArchitectureConfig(geometry, num_banks=banks, policy="static")
        savings[banks] = simulate(config, trace, lut).energy_savings
    print(f"\nEsav vs M: {[(m, f'{s:.1%}') for m, s in savings.items()]}")
    gain_4_to_16 = savings[16] - savings[4]
    gain_16_to_64 = savings[64] - savings[16]
    assert gain_16_to_64 < gain_4_to_16
