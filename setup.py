"""Packaging for the repro library and the reprolint tool.

``pip install -e .`` installs both packages and the ``repro`` console
entry point; ``pip install -e .[lint]`` adds the static-analysis
toolchain (mypy) that the CI lint gate runs. reprolint itself is
dependency-free stdlib and ships from ``tools/``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-calimera-date2011",
    version="1.0.0",
    description=(
        "Reproduction of 'Partitioned Cache Architectures for Reduced "
        "NBTI-Induced Aging' (DATE 2011): bit-exact banked cache "
        "simulation, aging models, campaigns, and a repo-specific "
        "invariant linter"
    ),
    python_requires=">=3.10",
    package_dir={"": "src", "reprolint": "tools/reprolint"},
    packages=find_packages("src") + ["reprolint"],
    package_data={"repro": ["py.typed"], "repro.kernels": ["*.c"]},
    install_requires=["numpy"],
    extras_require={
        "compiled": ["numba"],
        "lint": ["mypy>=1.8"],
        "test": ["pytest", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            "reprolint = reprolint.cli:main",
        ]
    },
)
